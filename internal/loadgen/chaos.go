// Package loadgen is the load & chaos harness behind `cmd/loadgen` and
// `make load-gate`: a seeded Zipf traffic generator (closed- or open-loop)
// that replays a realistic mix of PSP operations against a live pspd or
// cluster gateway while a chaos schedule injects 503 bursts, latency
// spikes, partitions, and shard kills — and then reports per-route latency
// histograms plus an error taxonomy strict enough to gate on "zero
// unexpected client-visible failures".
//
// Everything is seeded: the corpus, the op mix, the Zipf ranks, the fault
// schedule. Two runs with the same seed replay the same workload, which is
// what makes the SLO gate in CI meaningful rather than a coin flip.
package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("750ms") and unmarshals from either that form or integer nanoseconds,
// so chaos schedules on disk stay legible.
type Duration time.Duration

// MarshalJSON renders the duration as its String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "300ms"-style strings or raw nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("loadgen: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("loadgen: duration must be a string or nanoseconds: %w", err)
	}
	*d = Duration(n)
	return nil
}

// EventKind names one chaos failure mode.
type EventKind string

const (
	// EventBurst503 makes a shard answer 503 (with Retry-After) for a
	// fraction Rate of its requests for the event window.
	EventBurst503 EventKind = "burst503"
	// EventLatency delays every request on a shard by Delay for the
	// window.
	EventLatency EventKind = "latency"
	// EventPartition makes a shard unreachable at the transport layer
	// (connection refused) until the window ends.
	EventPartition EventKind = "partition"
	// EventKill closes the shard's listener entirely; the window end
	// restarts it on the same address with its store intact — a process
	// restart, not a data loss.
	EventKill EventKind = "kill"
)

// Event is one windowed fault in a chaos schedule.
type Event struct {
	At    Duration  `json:"at"`              // offset from run start
	Kind  EventKind `json:"kind"`            // failure mode
	Shard int       `json:"shard"`           // target shard index
	Rate  float64   `json:"rate,omitempty"`  // burst503: fraction of requests hit
	Delay Duration  `json:"delay,omitempty"` // latency: added per-request delay
	For   Duration  `json:"for"`             // window length; the fault reverts after
}

// Schedule is a full chaos timeline, JSON-serializable for replay.
type Schedule struct {
	Events []Event `json:"events"`
}

// Validate checks every event against the number of shards available.
func (s *Schedule) Validate(shards int) error {
	for i, e := range s.Events {
		switch e.Kind {
		case EventBurst503:
			if e.Rate <= 0 || e.Rate > 1 {
				return fmt.Errorf("loadgen: event %d: burst503 rate %v outside (0,1]", i, e.Rate)
			}
		case EventLatency:
			if e.Delay <= 0 {
				return fmt.Errorf("loadgen: event %d: latency event needs a positive delay", i)
			}
		case EventPartition, EventKill:
		default:
			return fmt.Errorf("loadgen: event %d: unknown kind %q", i, e.Kind)
		}
		if e.Shard < 0 || e.Shard >= shards {
			return fmt.Errorf("loadgen: event %d: shard %d outside [0,%d)", i, e.Shard, shards)
		}
		if e.At < 0 {
			return fmt.Errorf("loadgen: event %d: negative start offset", i)
		}
		if e.For <= 0 {
			return fmt.Errorf("loadgen: event %d: window must be positive", i)
		}
	}
	return nil
}

// End returns when the last fault reverts.
func (s *Schedule) End() time.Duration {
	var end time.Duration
	for _, e := range s.Events {
		if t := time.Duration(e.At) + time.Duration(e.For); t > end {
			end = t
		}
	}
	return end
}

// GateSchedule is the builtin schedule `make load-gate` runs against a
// 3-shard cluster: a full 503 blackout on shard 0, a partial burst on
// shard 1, then a partition of shard 2 — staggered so the replica quorum
// (R=3, W=2) always has two healthy shards and a retrying client should
// see zero terminal failures. The final ~30% of the run is fault-free so
// breakers demonstrably recover before stats are read.
func GateSchedule(total time.Duration) *Schedule {
	frac := func(f float64) Duration { return Duration(time.Duration(f * float64(total))) }
	return &Schedule{Events: []Event{
		{At: frac(0.10), Kind: EventBurst503, Shard: 0, Rate: 1.0, For: frac(0.16)},
		{At: frac(0.32), Kind: EventBurst503, Shard: 1, Rate: 0.5, For: frac(0.12)},
		{At: frac(0.50), Kind: EventPartition, Shard: 2, For: frac(0.16)},
	}}
}

// Hooks is what a chaos schedule drives. SelfCluster implements it
// in-process; an external harness could implement it with iptables and
// kill(1).
type Hooks interface {
	// Shards reports how many shards exist (for Validate).
	Shards() int
	// Burst503 sets the 503 injection rate on a shard; 0 clears it.
	Burst503(shard int, rate float64)
	// Latency sets the per-request added delay on a shard; 0 clears it.
	Latency(shard int, d time.Duration)
	// Partition makes the shard unreachable; Heal reverses it.
	Partition(shard int)
	Heal(shard int)
	// Kill stops the shard's listener; Restart brings it back on the
	// same address.
	Kill(shard int) error
	Restart(shard int) error
}

// scheduledAction is one timeline step: an apply or a revert.
type scheduledAction struct {
	at     time.Duration
	event  int
	revert bool
	run    func() error
	desc   string
}

// RunSchedule executes the schedule against the hooks in real time,
// applying each fault at its offset and reverting it when its window ends.
// It returns after the last revert, or — when ctx is canceled mid-window —
// after reverting every fault already applied, so a truncated run never
// leaves a shard faulted. logf (may be nil) narrates each step.
func RunSchedule(ctx context.Context, s *Schedule, h Hooks, logf func(string, ...any)) error {
	if err := s.Validate(h.Shards()); err != nil {
		return err
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	actions := make([]scheduledAction, 0, 2*len(s.Events))
	for i, e := range s.Events {
		i, e := i, e
		apply, revert, desc := actionsFor(e, h)
		actions = append(actions,
			scheduledAction{at: time.Duration(e.At), event: i, run: apply, desc: desc},
			scheduledAction{at: time.Duration(e.At) + time.Duration(e.For), event: i, revert: true, run: revert, desc: "revert " + desc},
		)
	}
	sort.SliceStable(actions, func(i, j int) bool { return actions[i].at < actions[j].at })

	start := time.Now()
	applied := make(map[int]func() error) // event index -> pending revert
	var firstErr error
	for _, a := range actions {
		select {
		case <-time.After(time.Until(start.Add(a.at))):
		case <-ctx.Done():
			// Truncated: revert everything still in effect, then stop.
			for i, rv := range applied {
				if err := rv(); err != nil && firstErr == nil {
					firstErr = err
				}
				delete(applied, i)
			}
			return firstErr
		}
		logf("chaos t=%v: %s", a.at.Round(time.Millisecond), a.desc)
		if err := a.run(); err != nil && firstErr == nil {
			firstErr = err
		}
		if a.revert {
			delete(applied, a.event)
		} else {
			applied[a.event] = revertFor(s.Events[a.event], h)
		}
	}
	return firstErr
}

// actionsFor maps an event to its apply and revert closures.
func actionsFor(e Event, h Hooks) (apply, revert func() error, desc string) {
	switch e.Kind {
	case EventBurst503:
		return func() error { h.Burst503(e.Shard, e.Rate); return nil },
			func() error { h.Burst503(e.Shard, 0); return nil },
			fmt.Sprintf("burst503 shard=%d rate=%.2f", e.Shard, e.Rate)
	case EventLatency:
		return func() error { h.Latency(e.Shard, time.Duration(e.Delay)); return nil },
			func() error { h.Latency(e.Shard, 0); return nil },
			fmt.Sprintf("latency shard=%d delay=%v", e.Shard, time.Duration(e.Delay))
	case EventPartition:
		return func() error { h.Partition(e.Shard); return nil },
			func() error { h.Heal(e.Shard); return nil },
			fmt.Sprintf("partition shard=%d", e.Shard)
	case EventKill:
		return func() error { return h.Kill(e.Shard) },
			func() error { return h.Restart(e.Shard) },
			fmt.Sprintf("kill shard=%d", e.Shard)
	}
	return func() error { return nil }, func() error { return nil }, "noop"
}

// revertFor returns just the revert closure for an event.
func revertFor(e Event, h Hooks) func() error {
	_, revert, _ := actionsFor(e, h)
	return revert
}
