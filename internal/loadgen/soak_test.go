package loadgen

import (
	"context"
	"testing"
	"time"
)

// TestSoakChaosZipf is the in-process version of `make load-gate`: a
// 3-shard cluster with a deliberately tiny gateway admission capacity,
// Zipf traffic from several closed-loop workers, and the builtin gate
// schedule (full 503 blackout, partial burst, partition) running
// underneath. It asserts the whole robustness story at once:
//
//   - zero unexpected client-visible failures — every fault was absorbed
//     by failover, quorum, retries, or an honest 429;
//   - overload shedding actually happened (client saw 429s) and the
//     client retried them away;
//   - shard breakers tripped during the chaos AND recovered by the end.
//
// Runs under -short and -race: ~4s of wall time, all loopback.
func TestSoakChaosZipf(t *testing.T) {
	const total = 4 * time.Second

	c, err := StartSelfCluster(SelfConfig{
		Shards:             3,
		Seed:               42,
		GatewayMaxInflight: 4,
		GatewayAdmitWait:   10 * time.Millisecond,
		GatewayAdmitQueue:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	r, err := New(Config{
		BaseURL:  c.URL,
		Seed:     42,
		Duration: total,
		Workers:  10,
		Corpus:   12,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := r.Setup(ctx); err != nil {
		t.Fatal(err)
	}

	chaosDone := make(chan error, 1)
	go func() {
		chaosDone <- RunSchedule(ctx, GateSchedule(total), c, t.Logf)
	}()

	rep, err := r.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-chaosDone; err != nil {
		t.Fatalf("chaos schedule: %v", err)
	}
	rep.FillCluster(c.Gateway())
	if testing.Verbose() {
		rep.Summary(testWriter{t})
	}

	if rep.Unexpected != 0 {
		t.Fatalf("unexpected failures: %d, samples: %v", rep.Unexpected, rep.UnexpectedSamples)
	}
	if rep.TotalOps() == 0 {
		t.Fatal("no ops completed")
	}
	if rep.Sheds() == 0 {
		t.Fatal("overload shedding never exercised: want client-visible 429s under a capacity-4 gateway")
	}
	if rep.Cluster.BreakerOpens == 0 {
		t.Fatalf("no breaker tripped during chaos: %+v", rep.Cluster)
	}
	if rep.Cluster.BreakerRecoveries == 0 {
		t.Fatalf("no breaker recovered after chaos: %+v", rep.Cluster)
	}
	if rep.Cluster.OpenBreakers != 0 {
		t.Fatalf("breakers still open after the clean tail: %+v", rep.Cluster)
	}
}

// testWriter adapts t.Logf to io.Writer for Report.Summary.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}
