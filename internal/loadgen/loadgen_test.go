package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"puppies/internal/psp"
	"puppies/internal/stats"
)

// fakeSnapshot builds a flat latency snapshot for report tests.
func fakeSnapshot(p99 int64) stats.HistogramSnapshot {
	return stats.HistogramSnapshot{Count: 100, MeanNs: float64(p99), MinNs: p99, MaxNs: p99, P50Ns: p99, P90Ns: p99, P99Ns: p99, P999Ns: p99}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("hotget=50, coldget=20,upload=30")
	if err != nil {
		t.Fatal(err)
	}
	want := Mix{HotGet: 50, ColdGet: 20, Upload: 30}
	if m != want {
		t.Fatalf("mix %+v, want %+v", m, want)
	}
	for _, bad := range []string{"", "hotget", "hotget=x", "bogus=5", "hotget=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestMixPickCoversAllRoutes(t *testing.T) {
	m := DefaultMix()
	r, err := New(Config{BaseURL: "http://x", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng, _ := r.workerRNG(0)
	seen := map[string]int{}
	for i := 0; i < 10000; i++ {
		seen[m.pick(rng)]++
	}
	for _, route := range []string{RouteHotGet, RouteColdGet, RouteUpload, RouteBatch, RouteRecover, RouteSearch, RouteThumb} {
		if seen[route] == 0 {
			t.Fatalf("route %s never picked: %v", route, seen)
		}
	}
	// The hot share must dominate roughly per its weight.
	if seen[RouteHotGet] < seen[RouteBatch] {
		t.Fatalf("hotget (%d) drawn less than batch (%d)", seen[RouteHotGet], seen[RouteBatch])
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := GateSchedule(10 * time.Second)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Events, back.Events) {
		t.Fatalf("round trip changed schedule:\n%+v\n%+v", s.Events, back.Events)
	}
	// Durations serialize as strings, and numbers still parse.
	var numeric Schedule
	if err := json.Unmarshal([]byte(`{"events":[{"at":1000000000,"kind":"partition","shard":0,"for":500000000}]}`), &numeric); err != nil {
		t.Fatal(err)
	}
	if time.Duration(numeric.Events[0].At) != time.Second {
		t.Fatalf("numeric at = %v", time.Duration(numeric.Events[0].At))
	}
}

func TestGateScheduleShapeAndValidation(t *testing.T) {
	s := GateSchedule(10 * time.Second)
	if err := s.Validate(3); err != nil {
		t.Fatal(err)
	}
	// Windows must not overlap: each event must end before the next
	// begins, so R=3/W=2 always has two healthy shards.
	for i := 1; i < len(s.Events); i++ {
		prevEnd := time.Duration(s.Events[i-1].At) + time.Duration(s.Events[i-1].For)
		if time.Duration(s.Events[i].At) < prevEnd {
			t.Fatalf("events %d and %d overlap", i-1, i)
		}
	}
	// The tail must be fault-free so breakers can demonstrate recovery.
	if end := s.End(); end > 8*time.Second {
		t.Fatalf("last fault reverts at %v, want a clean tail", end)
	}
	// One partition event is required by the load gate.
	var partitions int
	for _, e := range s.Events {
		if e.Kind == EventPartition {
			partitions++
		}
	}
	if partitions != 1 {
		t.Fatalf("gate schedule has %d partitions, want 1", partitions)
	}
	if err := s.Validate(2); err == nil {
		t.Fatal("schedule targeting shard 2 must not validate with 2 shards")
	}
}

func TestScheduleValidateRejectsBadEvents(t *testing.T) {
	cases := []Event{
		{Kind: "meteor", Shard: 0, For: Duration(time.Second)},
		{Kind: EventBurst503, Shard: 0, Rate: 0, For: Duration(time.Second)},
		{Kind: EventBurst503, Shard: 0, Rate: 1.5, For: Duration(time.Second)},
		{Kind: EventLatency, Shard: 0, For: Duration(time.Second)},
		{Kind: EventPartition, Shard: 5, For: Duration(time.Second)},
		{Kind: EventPartition, Shard: 0},
		{Kind: EventPartition, Shard: 0, At: Duration(-1), For: Duration(time.Second)},
	}
	for i, e := range cases {
		s := &Schedule{Events: []Event{e}}
		if err := s.Validate(3); err == nil {
			t.Fatalf("case %d (%+v) validated", i, e)
		}
	}
}

// recordingHooks logs chaos calls for RunSchedule assertions.
type recordingHooks struct {
	mu    chan struct{}
	calls []string
}

func newRecordingHooks() *recordingHooks {
	return &recordingHooks{mu: make(chan struct{}, 1)}
}

func (h *recordingHooks) log(s string) {
	h.mu <- struct{}{}
	h.calls = append(h.calls, s)
	<-h.mu
}

func (h *recordingHooks) Shards() int { return 3 }
func (h *recordingHooks) Burst503(shard int, rate float64) {
	h.log(fmt.Sprintf("burst %d %.1f", shard, rate))
}
func (h *recordingHooks) Latency(shard int, d time.Duration) {
	h.log(fmt.Sprintf("latency %d %v", shard, d))
}
func (h *recordingHooks) Partition(shard int)  { h.log(fmt.Sprintf("partition %d", shard)) }
func (h *recordingHooks) Heal(shard int)       { h.log(fmt.Sprintf("heal %d", shard)) }
func (h *recordingHooks) Kill(shard int) error { h.log(fmt.Sprintf("kill %d", shard)); return nil }
func (h *recordingHooks) Restart(shard int) error {
	h.log(fmt.Sprintf("restart %d", shard))
	return nil
}

func TestRunScheduleAppliesAndReverts(t *testing.T) {
	h := newRecordingHooks()
	s := &Schedule{Events: []Event{
		{At: 0, Kind: EventBurst503, Shard: 1, Rate: 0.5, For: Duration(10 * time.Millisecond)},
		{At: Duration(5 * time.Millisecond), Kind: EventKill, Shard: 2, For: Duration(10 * time.Millisecond)},
	}}
	if err := RunSchedule(context.Background(), s, h, nil); err != nil {
		t.Fatal(err)
	}
	want := []string{"burst 1 0.5", "kill 2", "burst 1 0.0", "restart 2"}
	if !reflect.DeepEqual(h.calls, want) {
		t.Fatalf("calls %v, want %v", h.calls, want)
	}
}

func TestRunScheduleRevertsOnCancel(t *testing.T) {
	h := newRecordingHooks()
	s := &Schedule{Events: []Event{
		{At: 0, Kind: EventPartition, Shard: 0, For: Duration(time.Hour)},
	}}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if err := RunSchedule(ctx, s, h, nil); err != nil {
		t.Fatal(err)
	}
	want := []string{"partition 0", "heal 0"}
	if !reflect.DeepEqual(h.calls, want) {
		t.Fatalf("canceled run must still heal: calls %v, want %v", h.calls, want)
	}
}

func TestClassifyTaxonomy(t *testing.T) {
	cases := []struct {
		err      error
		class    string
		expected bool
	}{
		{nil, ClassOK, true},
		{fmt.Errorf("wrap: %w", psp.ErrOverloaded), ClassShed, true},
		{&psp.StatusError{Code: 429}, ClassShed, true},
		{context.Canceled, ClassCanceled, true},
		{context.DeadlineExceeded, ClassCanceled, true},
		{fmt.Errorf("gone: %w", psp.ErrNotFound), ClassNotFound, false},
		{fmt.Errorf("bits: %w", psp.ErrCorrupt), ClassCorrupt, false},
		{&psp.StatusError{Code: 503}, ClassUnavailable, false},
		{errors.New("mystery"), ClassOther, false},
	}
	for i, c := range cases {
		class, expected := Classify(c.err)
		if class != c.class || expected != c.expected {
			t.Fatalf("case %d (%v): got (%s,%v), want (%s,%v)", i, c.err, class, expected, c.class, c.expected)
		}
	}
}

func TestBenchRowsEncodeSLO(t *testing.T) {
	rep := &Report{
		Seed: 1,
		Routes: map[string]RouteReport{
			RouteHotGet: {Ops: 100, Latency: fakeSnapshot(100)},
			RouteThumb:  {Ops: 40, Latency: fakeSnapshot(40)},
		},
	}
	rows := rep.BenchRows(250*time.Millisecond, 250*time.Millisecond)
	byName := map[string]BenchRow{}
	for _, row := range rows {
		byName[row.Name] = row
	}
	slo, ok := byName["LoadSLOHotGet"]
	if !ok {
		t.Fatalf("rows missing SLO: %v", rows)
	}
	if slo.Metrics["p99-ns"] != float64(250*time.Millisecond) || slo.Metrics["ok-per-op"] != 1 {
		t.Fatalf("slo row %+v", slo)
	}
	hot := byName["LoadHotGet"]
	if hot.Iterations != 100 || hot.Metrics["ok-per-op"] != 1 {
		t.Fatalf("hot row %+v", hot)
	}
	tslo, ok := byName["LoadSLOThumbnail"]
	if !ok {
		t.Fatalf("rows missing thumbnail SLO: %v", rows)
	}
	if tslo.Metrics["p99-ns"] != float64(250*time.Millisecond) || tslo.Metrics["ok-per-op"] != 1 {
		t.Fatalf("thumbnail slo row %+v", tslo)
	}
	if thumb := byName["LoadThumbnail"]; thumb.Iterations != 40 {
		t.Fatalf("thumbnail row %+v", thumb)
	}
	// The gate ratio must hold exactly when p99 is under the ceiling.
	if slo.Metrics["p99-ns"]/hot.Metrics["p99-ns"] < 1 {
		t.Fatalf("gate ratio below 1: slo=%v hot=%v", slo.Metrics["p99-ns"], hot.Metrics["p99-ns"])
	}
	// Row names must be slash-free for benchfmt's ratio grammar.
	for _, row := range rows {
		for _, r := range row.Name {
			if r == '/' {
				t.Fatalf("row name %q contains '/'", row.Name)
			}
		}
	}
}
