package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"puppies/internal/cluster"
	"puppies/internal/psp"
	"puppies/internal/stats"
)

// ClusterSource is anything that can produce gateway statz — the live
// *cluster.Gateway in selfhost runs.
type ClusterSource interface {
	Stats() cluster.Statz
}

// RouteReport is one route's aggregated outcome.
type RouteReport struct {
	Ops        uint64                  `json:"ops"`
	Errors     map[string]uint64       `json:"errors,omitempty"`
	Unexpected uint64                  `json:"unexpected"`
	Latency    stats.HistogramSnapshot `json:"latencyNs"`
}

// ClusterReport captures gateway-side evidence after a selfhost chaos run:
// that overload shedding happened, and that breakers tripped AND came
// back. The load gate asserts on these, not just on client-side numbers.
type ClusterReport struct {
	GatewaySheds      uint64 `json:"gatewaySheds"`
	BreakerOpens      uint64 `json:"breakerOpens"`
	BreakerRecoveries uint64 `json:"breakerRecoveries"`
	OpenBreakers      int    `json:"openBreakers"`
	Failovers         uint64 `json:"failovers"`
	Hedges            uint64 `json:"hedges"`
}

// Report is a full load run's result, serializable for archiving next to
// the benchfmt rows.
type Report struct {
	Seed              int64                  `json:"seed"`
	DurationSec       float64                `json:"durationSec"`
	Mode              string                 `json:"mode"`
	Corpus            int                    `json:"corpus"`
	Routes            map[string]RouteReport `json:"routes"`
	Client            psp.ClientStats        `json:"client"`
	ItemSheds         uint64                 `json:"itemSheds"`
	Unexpected        uint64                 `json:"unexpected"`
	UnexpectedSamples []string               `json:"unexpectedSamples,omitempty"`
	Cluster           *ClusterReport         `json:"cluster,omitempty"`
}

// TotalOps sums ops across routes.
func (r *Report) TotalOps() uint64 {
	var n uint64
	for _, rr := range r.Routes {
		n += rr.Ops
	}
	return n
}

// Sheds reports how many client-visible 429s occurred (terminal or
// retried), including per-item batch sheds — the number -require-sheds
// gates on.
func (r *Report) Sheds() uint64 { return r.Client.Overloaded + r.ItemSheds }

// BenchRow is one benchfmt-compatible JSON result row; field names match
// cmd/benchfmt's Result so `benchfmt -new BENCH_PR8.json -ratio ...` reads
// loadgen output directly.
type BenchRow struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// benchRouteNames maps report routes to benchfmt row names. Slash-free on
// purpose: benchfmt's ratio grammar splits NUM/DEN on '/'.
var benchRouteNames = map[string]string{
	RouteHotGet:  "LoadHotGet",
	RouteColdGet: "LoadColdGet",
	RouteUpload:  "LoadUpload",
	RouteBatch:   "LoadBatch",
	RouteRecover: "LoadRecover",
	RouteSearch:  "LoadSearch",
	RouteThumb:   "LoadThumbnail",
}

// BenchRows renders the report as benchfmt rows. Each route row carries
// its latency quantiles and ok/err fractions; LoadOverall aggregates the
// run; LoadSLOHotGet and LoadSLOThumbnail are synthetic rows holding the
// SLO bounds so a plain benchfmt ratio check becomes an absolute gate:
//
//	LoadSLOHotGet/LoadHotGet       >= 1 : p99-ns   (hot GET p99 under ceiling)
//	LoadSLOThumbnail/LoadThumbnail >= 1 : p99-ns   (1/8-scale GET p99 under ceiling)
//	LoadOverall/LoadSLOHotGet      >= 1 : ok-per-op (zero unexpected failures)
func (r *Report) BenchRows(sloHotGetP99, sloThumbP99 time.Duration) []BenchRow {
	rows := make([]BenchRow, 0, len(r.Routes)+2)
	for _, route := range sortedRoutes(r.Routes) {
		rr := r.Routes[route]
		ok := float64(rr.Ops-rr.Unexpected) / float64(rr.Ops)
		rows = append(rows, BenchRow{
			Name:       benchRouteNames[route],
			Iterations: int64(rr.Ops),
			NsPerOp:    rr.Latency.MeanNs,
			Metrics: map[string]float64{
				"p50-ns":     float64(rr.Latency.P50Ns),
				"p90-ns":     float64(rr.Latency.P90Ns),
				"p99-ns":     float64(rr.Latency.P99Ns),
				"ok-per-op":  ok,
				"err-per-op": float64(rr.Unexpected) / float64(rr.Ops),
			},
		})
	}
	total := r.TotalOps()
	if total > 0 {
		var meanNs float64
		for _, rr := range r.Routes {
			meanNs += rr.Latency.MeanNs * float64(rr.Ops)
		}
		rows = append(rows, BenchRow{
			Name:       "LoadOverall",
			Iterations: int64(total),
			NsPerOp:    meanNs / float64(total),
			Metrics: map[string]float64{
				"ok-per-op":  float64(total-r.Unexpected) / float64(total),
				"err-per-op": float64(r.Unexpected) / float64(total),
				"shed-count": float64(r.Sheds()),
				"retries":    float64(r.Client.Retries),
			},
		})
	}
	if sloHotGetP99 > 0 {
		rows = append(rows, BenchRow{
			Name:       "LoadSLOHotGet",
			Iterations: 1,
			NsPerOp:    1,
			Metrics: map[string]float64{
				"p99-ns":    float64(sloHotGetP99.Nanoseconds()),
				"ok-per-op": 1,
			},
		})
	}
	if sloThumbP99 > 0 {
		rows = append(rows, BenchRow{
			Name:       "LoadSLOThumbnail",
			Iterations: 1,
			NsPerOp:    1,
			Metrics: map[string]float64{
				"p99-ns":    float64(sloThumbP99.Nanoseconds()),
				"ok-per-op": 1,
			},
		})
	}
	return rows
}

// WriteBenchJSON writes the rows as indented JSON (the BENCH_PR8.json
// artifact).
func (r *Report) WriteBenchJSON(w io.Writer, sloHotGetP99, sloThumbP99 time.Duration) error {
	data, err := json.MarshalIndent(r.BenchRows(sloHotGetP99, sloThumbP99), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Summary renders a human-readable digest for the CLI.
func (r *Report) Summary(w io.Writer) {
	fmt.Fprintf(w, "loadgen: seed=%d mode=%s duration=%.2fs ops=%d unexpected=%d sheds=%d retries=%d\n",
		r.Seed, r.Mode, r.DurationSec, r.TotalOps(), r.Unexpected, r.Sheds(), r.Client.Retries)
	for _, route := range sortedRoutes(r.Routes) {
		rr := r.Routes[route]
		fmt.Fprintf(w, "  %-8s ops=%-6d p50=%-10v p99=%-10v errs=%v\n",
			route, rr.Ops,
			time.Duration(rr.Latency.P50Ns).Round(time.Microsecond),
			time.Duration(rr.Latency.P99Ns).Round(time.Microsecond),
			rr.Errors)
	}
	if r.Cluster != nil {
		fmt.Fprintf(w, "  cluster  gatewaySheds=%d breakerOpens=%d breakerRecoveries=%d openBreakers=%d failovers=%d hedges=%d\n",
			r.Cluster.GatewaySheds, r.Cluster.BreakerOpens, r.Cluster.BreakerRecoveries,
			r.Cluster.OpenBreakers, r.Cluster.Failovers, r.Cluster.Hedges)
	}
	for _, s := range r.UnexpectedSamples {
		fmt.Fprintf(w, "  UNEXPECTED: %s\n", s)
	}
}

// FillCluster folds gateway statz into the report.
func (r *Report) FillCluster(st ClusterSource) {
	s := st.Stats()
	cr := &ClusterReport{
		GatewaySheds: s.Admission.Sheds(),
		OpenBreakers: s.OpenBreakers,
		Failovers:    s.Failovers,
		Hedges:       s.Hedges,
	}
	for _, sh := range s.Shards {
		cr.BreakerOpens += sh.BreakerOpens
		cr.BreakerRecoveries += sh.BreakerRecoveries
	}
	r.Cluster = cr
}
