package loadgen

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"puppies/internal/cluster"
	"puppies/internal/faults"
	"puppies/internal/psp"
)

// SelfConfig shapes an in-process cluster for selfhost load runs.
type SelfConfig struct {
	// Shards is the member count (default 3).
	Shards int
	// Seed feeds the fault injectors and partition RNGs.
	Seed int64
	// Replicas is R (default min(3, Shards)); WriteQuorum stays the
	// gateway default R/2+1.
	Replicas int

	// Gateway admission knobs (zero = cluster defaults; the load gate
	// constrains these to force client-visible 429s).
	GatewayMaxInflight     int
	GatewayAdmitWait       time.Duration
	GatewayAdmitQueue      int
	GatewayAdmitRetryAfter time.Duration
	// ShardMaxInflight caps each shard's own admission (zero = default).
	ShardMaxInflight int

	// Probe/breaker cadence; the selfhost defaults are much faster than
	// production so chaos windows of a few hundred ms trip AND recover
	// breakers within a short run.
	ProbeInterval   time.Duration
	BreakerCooldown time.Duration
	FailThreshold   int
}

// selfShard is one in-process PSP shard: a psp.Server whose handler is
// wrapped by a swappable fault injector, served on a fixed loopback
// address so kill/restart cycles come back at the same ring position. The
// store lives on the psp.Server, not the listener, so a restart models a
// process crash with durable storage.
type selfShard struct {
	seed int64
	psp  *psp.Server
	base http.Handler

	handler atomic.Value // of hval; swapped when chaos changes

	mu    sync.Mutex
	addr  string
	srv   *http.Server
	rate  float64       // active 503 rate
	delay time.Duration // active added latency
}

// hval wraps handlers so atomic.Value sees one concrete type.
type hval struct{ h http.Handler }

func (s *selfShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.Load().(hval).h.ServeHTTP(w, r)
}

// setFaults rebuilds the shard's middleware from the currently active 503
// rate and latency. The 503 rule is first so a burst keeps its statistical
// rate even when a latency spike is also active.
func (s *selfShard) setFaults(rate float64, delay time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rate, s.delay = rate, delay
	if rate == 0 && delay == 0 {
		s.handler.Store(hval{s.base})
		return
	}
	in := faults.New(s.seed)
	if rate > 0 {
		in.Rule(faults.Rule{Rate: rate, Fault: faults.Fault{Kind: faults.Status503, RetryAfter: 100 * time.Millisecond}})
	}
	if delay > 0 {
		in.Rule(faults.Rule{Rate: 1, Fault: faults.Fault{Kind: faults.Latency, Delay: delay}})
	}
	s.handler.Store(hval{in.Middleware(s.base)})
}

// kill closes the listener; in-flight requests are cut, new connections
// are refused.
func (s *selfShard) kill() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.srv == nil {
		return nil
	}
	err := s.srv.Close()
	s.srv = nil
	return err
}

// restart re-listens on the shard's original address with the same store.
func (s *selfShard) restart() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.srv != nil {
		return nil
	}
	ln, err := net.Listen("tcp", s.addr)
	if err != nil {
		return fmt.Errorf("loadgen: restart shard on %s: %w", s.addr, err)
	}
	srv := &http.Server{Handler: s}
	s.srv = srv
	go serveIgnoringClose(srv, ln)
	return nil
}

func serveIgnoringClose(srv *http.Server, ln net.Listener) {
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		// Listener died outside a kill event; nothing to do but note it —
		// traffic to this shard will fail over and the breaker ejects it.
		_ = err
	}
}

// SelfCluster is an in-process N-shard PSP cluster (gateway + shards on
// loopback listeners) that implements Hooks, so a chaos schedule can fault
// it without any external process management.
type SelfCluster struct {
	// URL is the gateway base URL load is pointed at.
	URL string

	cfg    SelfConfig
	shards []*selfShard
	part   *faults.Partition
	gw     *cluster.Gateway
	gwSrv  *http.Server
	cancel context.CancelFunc
}

// StartSelfCluster boots the shards and gateway and starts health probing.
func StartSelfCluster(cfg SelfConfig) (*SelfCluster, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = cfg.Shards
		if cfg.Replicas > 3 {
			cfg.Replicas = 3
		}
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 100 * time.Millisecond
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 200 * time.Millisecond
	}

	c := &SelfCluster{cfg: cfg, part: faults.NewPartition(cfg.Seed + 101)}
	urls := make([]string, 0, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		ps := psp.NewServer()
		ps.MaxInflight = cfg.ShardMaxInflight
		sh := &selfShard{seed: cfg.Seed + int64(i)*7919, psp: ps, base: ps.Handler()}
		sh.handler.Store(hval{sh.base})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, err
		}
		sh.addr = ln.Addr().String()
		srv := &http.Server{Handler: sh}
		sh.srv = srv
		go serveIgnoringClose(srv, ln)
		c.shards = append(c.shards, sh)
		urls = append(urls, "http://"+sh.addr)
	}

	gw, err := cluster.New(cluster.Config{
		Shards:          urls,
		Replicas:        cfg.Replicas,
		Transport:       c.part.Transport(&http.Transport{MaxIdleConnsPerHost: 32}),
		ShardTimeout:    3 * time.Second,
		HedgeDelay:      75 * time.Millisecond,
		FailThreshold:   cfg.FailThreshold,
		BreakerCooldown: cfg.BreakerCooldown,
		ProbeInterval:   cfg.ProbeInterval,
		MaxInflight:     cfg.GatewayMaxInflight,
		AdmitWait:       cfg.GatewayAdmitWait,
		AdmitQueue:      cfg.GatewayAdmitQueue,
		AdmitRetryAfter: cfg.GatewayAdmitRetryAfter,
	})
	if err != nil {
		c.Close()
		return nil, err
	}
	c.gw = gw
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	gw.Start(ctx)

	gwLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.Close()
		return nil, err
	}
	c.gwSrv = &http.Server{Handler: gw.Handler()}
	go serveIgnoringClose(c.gwSrv, gwLn)
	c.URL = "http://" + gwLn.Addr().String()
	return c, nil
}

// Gateway exposes the live gateway for stats assertions after a run.
func (c *SelfCluster) Gateway() *cluster.Gateway { return c.gw }

// Close tears the whole cluster down.
func (c *SelfCluster) Close() {
	if c.cancel != nil {
		c.cancel()
	}
	if c.gwSrv != nil {
		_ = c.gwSrv.Close()
	}
	for _, sh := range c.shards {
		_ = sh.kill()
	}
	c.part.HealAll()
}

// Shards implements Hooks.
func (c *SelfCluster) Shards() int { return len(c.shards) }

// Burst503 implements Hooks.
func (c *SelfCluster) Burst503(shard int, rate float64) {
	sh := c.shards[shard]
	sh.mu.Lock()
	delay := sh.delay
	sh.mu.Unlock()
	sh.setFaults(rate, delay)
}

// Latency implements Hooks.
func (c *SelfCluster) Latency(shard int, d time.Duration) {
	sh := c.shards[shard]
	sh.mu.Lock()
	rate := sh.rate
	sh.mu.Unlock()
	sh.setFaults(rate, d)
}

// Partition implements Hooks: the gateway's transport refuses connections
// to the shard, exactly like a dropped network path.
func (c *SelfCluster) Partition(shard int) {
	c.part.Isolate(c.shards[shard].addr, faults.LinkUnreachable)
}

// Heal implements Hooks.
func (c *SelfCluster) Heal(shard int) {
	c.part.Heal(c.shards[shard].addr)
}

// Kill implements Hooks.
func (c *SelfCluster) Kill(shard int) error { return c.shards[shard].kill() }

// Restart implements Hooks.
func (c *SelfCluster) Restart(shard int) error { return c.shards[shard].restart() }
