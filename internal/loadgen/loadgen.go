package loadgen

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"puppies/internal/core"
	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
	"puppies/internal/psp"
	"puppies/internal/stats"
	"puppies/internal/transform"
)

// Route names used in reports; they mirror the op mix keys.
const (
	RouteHotGet  = "hotget"
	RouteColdGet = "coldget"
	RouteUpload  = "upload"
	RouteBatch   = "batch"
	RouteRecover = "recover"
	RouteSearch  = "search"
	RouteThumb   = "thumbnail"
)

// Mix is the op mix in integer shares (not required to sum to 100).
type Mix struct {
	HotGet  int `json:"hotget"`    // Zipf-ranked transformed GET, small spec set (cache-friendly)
	ColdGet int `json:"coldget"`   // uniform-ranked GET with a never-repeating spec (cache-hostile tail)
	Upload  int `json:"upload"`    // single image upload
	Batch   int `json:"batch"`     // 3-item streaming batch upload
	Recover int `json:"recover"`   // raw image + params fetch (the PUPPIES recovery path)
	Search  int `json:"search"`    // by-ID k-NN signature search, answer integrity-checked
	Thumb   int `json:"thumbnail"` // Zipf-ranked 1/8-scale GET (the grid-view scaled-decode path)
}

// DefaultMix is a read-heavy photo-sharing shape: most traffic is hot
// transformed views, with a grid-view thumbnail share, a cache-hostile
// tail, and a write trickle.
func DefaultMix() Mix {
	return Mix{HotGet: 40, ColdGet: 15, Upload: 10, Batch: 5, Recover: 15, Search: 5, Thumb: 10}
}

// Total sums the shares.
func (m Mix) Total() int {
	return m.HotGet + m.ColdGet + m.Upload + m.Batch + m.Recover + m.Search + m.Thumb
}

// ParseMix reads "hotget=55,coldget=15,upload=10,batch=5,recover=15".
// Omitted routes get share 0; at least one share must be positive.
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return Mix{}, fmt.Errorf("loadgen: bad mix term %q (want route=share)", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || n < 0 {
			return Mix{}, fmt.Errorf("loadgen: bad mix share %q", part)
		}
		switch strings.TrimSpace(k) {
		case RouteHotGet:
			m.HotGet = n
		case RouteColdGet:
			m.ColdGet = n
		case RouteUpload:
			m.Upload = n
		case RouteBatch:
			m.Batch = n
		case RouteRecover:
			m.Recover = n
		case RouteSearch:
			m.Search = n
		case RouteThumb:
			m.Thumb = n
		default:
			return Mix{}, fmt.Errorf("loadgen: unknown route %q in mix", k)
		}
	}
	if m.Total() <= 0 {
		return Mix{}, errors.New("loadgen: mix has no positive shares")
	}
	return m, nil
}

// pick draws a route from the mix with the worker's RNG.
func (m Mix) pick(rng *rand.Rand) string {
	n := rng.Intn(m.Total())
	for _, e := range []struct {
		route string
		share int
	}{
		{RouteHotGet, m.HotGet},
		{RouteColdGet, m.ColdGet},
		{RouteUpload, m.Upload},
		{RouteBatch, m.Batch},
		{RouteRecover, m.Recover},
		{RouteSearch, m.Search},
		{RouteThumb, m.Thumb},
	} {
		if n < e.share {
			return e.route
		}
		n -= e.share
	}
	return RouteHotGet
}

// Config shapes one load run.
type Config struct {
	// BaseURL is the pspd or gateway root.
	BaseURL string
	// HTTPClient overrides the transport (nil = pooled default).
	HTTPClient *http.Client
	// Seed makes the whole run replayable.
	Seed int64
	// Duration bounds the run (default 5s).
	Duration time.Duration
	// Workers is the closed-loop concurrency (default 8). Ignored when
	// QPS is set.
	Workers int
	// QPS switches to open-loop: seeded Poisson arrivals at this rate,
	// each op on its own goroutine regardless of how slow the server is —
	// the mode that actually surfaces queue collapse.
	QPS float64
	// Mix is the op mix (zero value = DefaultMix).
	Mix Mix
	// Corpus is how many distinct images to upload before the run
	// (default 24).
	Corpus int
	// ZipfS is the Zipf skew for hot GETs (default 1.2).
	ZipfS float64
	// Logf narrates progress (nil = silent).
	Logf func(string, ...any)
}

// routeStats aggregates one route's outcomes.
type routeStats struct {
	ops  atomic.Uint64
	hist *stats.Histogram

	mu   sync.Mutex
	errs map[string]uint64
}

// Runner drives one load run. Build with New, seed the corpus with Setup,
// then Run.
type Runner struct {
	cfg    Config
	client *psp.Client
	routes map[string]*routeStats

	ids      []string // corpus image IDs, rank 0 = hottest
	imgs     []*jpegc.Image
	pd       *core.PublicData
	rawJPEGs [][]byte
	rawPD    []byte

	coldSeq    atomic.Uint64
	itemSheds  atomic.Uint64
	unexpected atomic.Uint64

	mu      sync.Mutex
	samples []string
}

// Error classes for the taxonomy. "Expected" classes are outcomes a
// correct client is allowed to see under overload/chaos-with-retries:
// clean success, a terminal 429 shed (the server chose to refuse), and
// cancellation at run teardown. Everything else — 5xx after retries,
// corrupt payloads, vanished images — is unexpected and fails the gate.
const (
	ClassOK          = "ok"
	ClassShed        = "shed"
	ClassCanceled    = "canceled"
	ClassUnavailable = "unavailable"
	ClassNotFound    = "notfound"
	ClassCorrupt     = "corrupt"
	ClassOther       = "other"
)

// Classify maps an op error to its taxonomy class and whether it is
// expected under chaos-with-retries.
func Classify(err error) (class string, expected bool) {
	switch {
	case err == nil:
		return ClassOK, true
	case errors.Is(err, psp.ErrOverloaded):
		return ClassShed, true
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return ClassCanceled, true
	case errors.Is(err, psp.ErrNotFound):
		return ClassNotFound, false
	case errors.Is(err, psp.ErrCorrupt):
		return ClassCorrupt, false
	case errors.Is(err, psp.ErrRetryable):
		return ClassUnavailable, false
	default:
		return ClassOther, false
	}
}

// New validates the config and builds a runner (no traffic yet).
func New(cfg Config) (*Runner, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("loadgen: BaseURL required")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Corpus <= 0 {
		cfg.Corpus = 24
	}
	if cfg.Mix.Total() <= 0 {
		cfg.Mix = DefaultMix()
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.2
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	}
	r := &Runner{
		cfg: cfg,
		client: &psp.Client{
			BaseURL:        cfg.BaseURL,
			HTTPClient:     hc,
			RequestTimeout: 10 * time.Second,
		},
		routes: make(map[string]*routeStats),
	}
	for _, route := range []string{RouteHotGet, RouteColdGet, RouteUpload, RouteBatch, RouteRecover, RouteSearch, RouteThumb} {
		r.routes[route] = &routeStats{hist: &stats.Histogram{}, errs: make(map[string]uint64)}
	}
	return r, nil
}

// Client exposes the runner's PSP client (for stats after a run).
func (r *Runner) Client() *psp.Client { return r.client }

// synthImage renders a seeded sinusoidal test card. Phases AND spatial
// frequencies are randomized per image: phase alone shifts the pattern
// without changing its coarse luminance layout, which made every corpus
// image collapse to the same search signature; distinct frequencies give
// distinct layouts and therefore distinct signatures as well as distinct
// content IDs.
func synthImage(rng *rand.Rand, w, h int) (*jpegc.Image, error) {
	pl, err := imgplane.New(w, h, 3)
	if err != nil {
		return nil, err
	}
	p0, p1, p2 := rng.Float64()*6, rng.Float64()*6, rng.Float64()*6
	fx := 3 + rng.Float64()*9
	fy := 3 + rng.Float64()*9
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			pl.Planes[0].Pix[i] = float32(100 + 80*math.Sin(p0+float64(x)/fx)*math.Cos(float64(y)/fy))
			pl.Planes[1].Pix[i] = float32(128 + 25*math.Sin(p1+float64(x+y)/9))
			pl.Planes[2].Pix[i] = float32(128 + 25*math.Cos(p2+float64(x-y)/7))
		}
	}
	return jpegc.FromPlanar(pl, jpegc.Options{Quality: 80})
}

// Setup synthesizes and uploads the corpus. Every image carries valid
// (minimal) PublicData so the recover op's params fetch round-trips.
func (r *Runner) Setup(ctx context.Context) error {
	const w, h = 64, 48
	rng := rand.New(rand.NewSource(r.cfg.Seed))
	r.pd = &core.PublicData{W: w, H: h, Channels: 3}
	raw, err := r.pd.Encode()
	if err != nil {
		return err
	}
	r.rawPD = raw
	for i := 0; i < r.cfg.Corpus; i++ {
		img, err := synthImage(rng, w, h)
		if err != nil {
			return fmt.Errorf("loadgen: synth corpus image %d: %w", i, err)
		}
		id, err := r.client.Upload(ctx, img, r.pd, jpegc.EncodeOptions{Tables: jpegc.TablesOptimized})
		if err != nil {
			return fmt.Errorf("loadgen: seed corpus image %d: %w", i, err)
		}
		r.ids = append(r.ids, id)
		if len(r.imgs) < 4 {
			r.imgs = append(r.imgs, img)
			raw, err := encodeJPEG(img)
			if err != nil {
				return err
			}
			r.rawJPEGs = append(r.rawJPEGs, raw)
		}
	}
	r.cfg.Logf("corpus: %d images uploaded", len(r.ids))
	return nil
}

func encodeJPEG(img *jpegc.Image) ([]byte, error) {
	var buf bytes.Buffer
	if err := img.Encode(&buf, jpegc.EncodeOptions{Tables: jpegc.TablesOptimized}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// hotSpecs is the small fixed transform set hot GETs rotate through — the
// shapes a sharing UI serves constantly, and exactly what the serving
// cache should absorb.
var hotSpecs = []transform.Spec{
	{Op: transform.OpNone},
	{Op: transform.OpScale, FactorX: 0.5, FactorY: 0.5},
	{Op: transform.OpRotate90},
	{Op: transform.OpFlipH},
}

// thumbSpec is the single 1/8-scale spec the thumbnail route hammers —
// the grid-view shape the scaled-decode planner serves, and the same spec
// the psp ServeThumbnail benchmarks gate.
var thumbSpec = transform.Spec{Op: transform.OpScale, FactorX: 0.125, FactorY: 0.125}

// coldSpec returns a spec that has never been requested before in this
// run, defeating the transform cache on purpose.
func (r *Runner) coldSpec() transform.Spec {
	n := r.coldSeq.Add(1)
	return transform.Spec{Op: transform.OpScale, FactorX: 0.5 + float64(n%997)/2000 + float64(n)*1e-9, FactorY: 0.5}
}

// runOp executes one operation and returns its error.
func (r *Runner) runOp(ctx context.Context, route string, rng *rand.Rand, zipf *rand.Zipf) error {
	switch route {
	case RouteHotGet:
		id := r.ids[int(zipf.Uint64())]
		spec := hotSpecs[rng.Intn(len(hotSpecs))]
		_, err := r.client.FetchTransformed(ctx, id, spec)
		return err
	case RouteColdGet:
		id := r.ids[rng.Intn(len(r.ids))]
		_, err := r.client.FetchTransformed(ctx, id, r.coldSpec())
		return err
	case RouteThumb:
		id := r.ids[int(zipf.Uint64())]
		_, err := r.client.FetchTransformed(ctx, id, thumbSpec)
		return err
	case RouteUpload:
		img := r.imgs[rng.Intn(len(r.imgs))]
		_, err := r.client.Upload(ctx, img, r.pd, jpegc.EncodeOptions{Tables: jpegc.TablesOptimized})
		return err
	case RouteBatch:
		items := make([]psp.BatchUpload, 3)
		for i := range items {
			items[i] = psp.BatchUpload{Image: r.rawJPEGs[rng.Intn(len(r.rawJPEGs))], Params: r.rawPD}
		}
		results, err := r.client.UploadBatch(ctx, items)
		if err != nil {
			return err
		}
		// The envelope succeeded; fold per-item outcomes into the
		// taxonomy. A per-item 429 is an expected shed; any other
		// per-item failure is a real loss the envelope hid.
		var firstBad error
		for _, res := range results {
			switch {
			case res.Error == "":
			case res.Status == http.StatusTooManyRequests:
				r.itemSheds.Add(1)
			default:
				if firstBad == nil {
					firstBad = fmt.Errorf("loadgen: batch item failed (%d): %s: %w", res.Status, res.Error, psp.ErrRetryable)
				}
			}
		}
		return firstBad
	case RouteRecover:
		id := r.ids[int(zipf.Uint64())]
		if _, err := r.client.FetchImage(ctx, id); err != nil {
			return err
		}
		_, err := r.client.FetchParams(ctx, id)
		return err
	case RouteSearch:
		// A stored image must come back among its own nearest neighbors at
		// distance 0 — anything else is an integrity failure, not a latency
		// blip. (Exact top-1 is not required: the small synthetic corpus can
		// contain signature ties at distance 0.)
		id := r.ids[int(zipf.Uint64())]
		k := len(r.ids)
		if k > 100 {
			k = 100 // server-side cap
		}
		resp, err := r.client.SearchByID(ctx, id, k)
		if err != nil {
			return err
		}
		for _, hit := range resp.Results {
			if hit.ID == id && hit.Distance == 0 {
				return nil
			}
		}
		// A result list full of distance-0 ties can legitimately tie-break
		// the query image itself out; only an unsaturated list missing it is
		// a real integrity failure.
		if len(resp.Results) >= k && resp.Results[len(resp.Results)-1].Distance == 0 {
			return nil
		}
		return fmt.Errorf("loadgen: search for %s did not return itself at distance 0: %+v: %w",
			id, resp.Results, psp.ErrCorrupt)
	}
	return fmt.Errorf("loadgen: unknown route %q", route)
}

// record folds one op outcome into the stats.
func (r *Runner) record(route string, d time.Duration, err error) {
	rs := r.routes[route]
	rs.ops.Add(1)
	rs.hist.Record(d)
	class, expected := Classify(err)
	if class != ClassOK {
		rs.mu.Lock()
		rs.errs[class]++
		rs.mu.Unlock()
	}
	if !expected {
		r.unexpected.Add(1)
		r.mu.Lock()
		if len(r.samples) < 16 {
			r.samples = append(r.samples, fmt.Sprintf("%s: %v", route, err))
		}
		r.mu.Unlock()
	}
}

// Run drives traffic until the configured duration elapses (or ctx is
// canceled), then assembles the report. Setup must have run first.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	if len(r.ids) == 0 {
		return nil, errors.New("loadgen: Setup must run (and upload a corpus) before Run")
	}
	start := time.Now()
	stopAt := start.Add(r.cfg.Duration)
	if r.cfg.QPS > 0 {
		r.runOpenLoop(ctx, stopAt)
	} else {
		r.runClosedLoop(ctx, stopAt)
	}
	return r.buildReport(time.Since(start)), nil
}

// workerRNG builds a per-worker RNG + Zipf pair, seeded so run replays are
// exact.
func (r *Runner) workerRNG(worker int) (*rand.Rand, *rand.Zipf) {
	rng := rand.New(rand.NewSource(r.cfg.Seed + 1_000_003*int64(worker+1)))
	zipf := rand.NewZipf(rng, r.cfg.ZipfS, 1, uint64(len(r.ids)-1))
	return rng, zipf
}

// runClosedLoop runs Workers goroutines back-to-back: concurrency is
// fixed, arrival rate adapts to server speed (classic closed loop).
func (r *Runner) runClosedLoop(ctx context.Context, stopAt time.Time) {
	var wg sync.WaitGroup
	for w := 0; w < r.cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng, zipf := r.workerRNG(w)
			for time.Now().Before(stopAt) && ctx.Err() == nil {
				route := r.cfg.Mix.pick(rng)
				opStart := time.Now()
				err := r.runOp(ctx, route, rng, zipf)
				r.record(route, time.Since(opStart), err)
			}
		}(w)
	}
	wg.Wait()
}

// runOpenLoop fires seeded Poisson arrivals at QPS regardless of server
// speed — slow responses pile up concurrency instead of slowing arrivals,
// which is what makes open loop the honest overload probe.
func (r *Runner) runOpenLoop(ctx context.Context, stopAt time.Time) {
	rng, _ := r.workerRNG(0)
	var wg sync.WaitGroup
	next := time.Now()
	for seq := 1; time.Now().Before(stopAt) && ctx.Err() == nil; seq++ {
		// Exponential inter-arrival for a Poisson process at QPS.
		next = next.Add(time.Duration(rng.ExpFloat64() / r.cfg.QPS * float64(time.Second)))
		if d := time.Until(next); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		route := r.cfg.Mix.pick(rng)
		wg.Add(1)
		go func(seq int, route string) {
			defer wg.Done()
			orng, ozipf := r.workerRNG(seq)
			opStart := time.Now()
			err := r.runOp(ctx, route, orng, ozipf)
			r.record(route, time.Since(opStart), err)
		}(seq, route)
	}
	wg.Wait()
}

// buildReport snapshots every counter into a Report.
func (r *Runner) buildReport(elapsed time.Duration) *Report {
	rep := &Report{
		Seed:        r.cfg.Seed,
		DurationSec: elapsed.Seconds(),
		Corpus:      len(r.ids),
		Mode:        "closed",
		Routes:      make(map[string]RouteReport),
		ItemSheds:   r.itemSheds.Load(),
		Unexpected:  r.unexpected.Load(),
	}
	if r.cfg.QPS > 0 {
		rep.Mode = "open"
	}
	r.mu.Lock()
	rep.UnexpectedSamples = append([]string(nil), r.samples...)
	r.mu.Unlock()
	for route, rs := range r.routes {
		if rs.ops.Load() == 0 {
			continue
		}
		rs.mu.Lock()
		errs := make(map[string]uint64, len(rs.errs))
		var unexpected uint64
		for class, n := range rs.errs {
			errs[class] = n
			if class != ClassOK && class != ClassShed && class != ClassCanceled {
				unexpected += n
			}
		}
		rs.mu.Unlock()
		rep.Routes[route] = RouteReport{
			Ops:        rs.ops.Load(),
			Errors:     errs,
			Unexpected: unexpected,
			Latency:    rs.hist.Snapshot(),
		}
	}
	rep.Client = r.client.Stats()
	return rep
}

// sortedRoutes returns report route names in stable order.
func sortedRoutes(m map[string]RouteReport) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
