package core

import (
	"fmt"

	"puppies/internal/dct"
	"puppies/internal/jpegc"
	"puppies/internal/keys"
	"puppies/internal/parallel"
	"puppies/internal/transform"
)

// regionRowGrain is the parallel chunk size for region loops, in
// (channel, block-row) units. Chunk boundaries depend only on the region
// size, so results are deterministic at any worker count.
const regionRowGrain = 4

// Scheme is a configured PuPPIeS encryptor.
type Scheme struct {
	params Params
	q      [dct.BlockLen]int32 // range matrix Q' (zigzag-indexed)
}

// NewScheme validates params and precomputes the range matrix.
func NewScheme(params Params) (*Scheme, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	s := &Scheme{params: params}
	switch params.Variant {
	case VariantC, VariantZ:
		q, err := RangeMatrix(params.MR, params.K)
		if err != nil {
			return nil, err
		}
		s.q = q
	default:
		// -N and -B perturb every coefficient at full range.
		for i := range s.q {
			s.q[i] = 2048
		}
	}
	return s, nil
}

// Params returns a copy of the scheme's configuration.
func (s *Scheme) Params() Params { return s.params }

// EncodeOptions returns the entropy-coding mode the variant calls for:
// -C and -Z rebuild Huffman tables (paper §IV-B.3); -N and -B demonstrate
// the blowup under default tables.
func (s *Scheme) EncodeOptions() jpegc.EncodeOptions {
	switch s.params.Variant {
	case VariantC, VariantZ:
		return jpegc.EncodeOptions{Tables: jpegc.TablesOptimized}
	default:
		return jpegc.EncodeOptions{Tables: jpegc.TablesDefault}
	}
}

// Stats summarizes one encryption operation.
type Stats struct {
	// Blocks is the number of coefficient blocks perturbed (all channels).
	Blocks int
	// Perturbed is the number of individual coefficients changed.
	Perturbed int
	// Wraps is the number of coefficients whose addition wrapped.
	Wraps int
	// NewZeros is the number of AC coefficients that became zero
	// (VariantZ's ZInd records).
	NewZeros int
}

// dcDelta returns the DC perturbation for original-grid block index k.
func (s *Scheme) dcDelta(pair *keys.Pair, k int) int32 {
	if s.params.Variant == VariantN {
		// The strawman perturbs every DC with the same single value — the
		// weakness §IV-B.1 describes.
		return pair.DC[0]
	}
	return pair.DC[k%keys.MatrixLen]
}

// acDelta returns the AC perturbation at zigzag position zz (1..63),
// before the Z-variant zero-skip rule.
func (s *Scheme) acDelta(pair *keys.Pair, zz int) int32 {
	switch s.params.Variant {
	case VariantN, VariantB:
		return pair.AC[zz] % acModulus
	default:
		return (pair.AC[zz] % s.q[zz]) % acModulus
	}
}

// RegionAssignment pairs an ROI with the matrix pair(s) that protect it.
// Exactly one of Pair and Pairs must be set. Pairs enables the §IV-D
// extension: successive 64-block groups cycle through the listed pairs,
// multiplying the brute-force search space (and allowing stripe-granular
// sharing) at a linear key-storage cost.
type RegionAssignment struct {
	ROI   ROI
	Pair  *keys.Pair
	Pairs []*keys.Pair
}

func (ra *RegionAssignment) pairList() []*keys.Pair {
	if ra.Pair != nil {
		return []*keys.Pair{ra.Pair}
	}
	return ra.Pairs
}

// EncryptImage perturbs every assigned region of img in place and returns
// the public data to store alongside it. Regions must be disjoint and
// block-aligned. The caller keeps ownership of img (clone first if the
// original must survive).
func (s *Scheme) EncryptImage(img *jpegc.Image, regions []RegionAssignment) (*PublicData, *Stats, error) {
	if err := img.Validate(); err != nil {
		return nil, nil, err
	}
	if len(regions) == 0 {
		return nil, nil, fmt.Errorf("core: no regions to encrypt")
	}
	maxH, maxV := img.MaxSampling()
	if hs, vs := img.Comps[0].Sampling(); hs != maxH || vs != maxV {
		return nil, nil, fmt.Errorf("core: luma sampling %dx%d below image maximum %dx%d (unsupported layout)", hs, vs, maxH, maxV)
	}
	for i := range regions {
		if err := regions[i].ROI.Validate(img.W, img.H); err != nil {
			return nil, nil, err
		}
		// On subsampled images the region's chroma window rounds outward to
		// whole chroma blocks; MCU alignment guarantees the windows of
		// disjoint regions never share a chroma block (which would perturb
		// it twice) and keeps the mapping stable under MCU-aligned crops.
		if img.Subsampled() && !regions[i].ROI.AlignedToMCU(img.W, img.H, maxH, maxV) {
			return nil, nil, fmt.Errorf("core: region %d ROI %+v not aligned to the %dx%d-pixel MCU grid of this subsampled image",
				i, regions[i].ROI, dct.BlockSize*maxH, dct.BlockSize*maxV)
		}
		if regions[i].Pair != nil && len(regions[i].Pairs) > 0 {
			return nil, nil, fmt.Errorf("core: region %d sets both Pair and Pairs", i)
		}
		pairs := regions[i].pairList()
		if len(pairs) == 0 {
			return nil, nil, fmt.Errorf("core: region %d has no key pair", i)
		}
		for pi, p := range pairs {
			if p == nil {
				return nil, nil, fmt.Errorf("core: region %d pair %d is nil", i, pi)
			}
			if err := p.Validate(); err != nil {
				return nil, nil, fmt.Errorf("core: region %d pair %d: %w", i, pi, err)
			}
		}
		for j := 0; j < i; j++ {
			if regions[i].ROI.Overlaps(regions[j].ROI) {
				return nil, nil, fmt.Errorf("core: regions %d and %d overlap", j, i)
			}
		}
	}

	pd := &PublicData{
		W:         img.W,
		H:         img.H,
		Channels:  img.Channels(),
		LumQuant:  img.Comps[0].Quant,
		Sampling:  samplingOf(img),
		Transform: transform.Spec{Op: transform.OpNone},
	}
	if img.Channels() == 3 {
		pd.ChromQuant = img.Comps[1].Quant
	} else {
		pd.ChromQuant = img.Comps[0].Quant
	}

	total := &Stats{}
	for i := range regions {
		rp, st, err := s.encryptRegion(img, regions[i].ROI, regions[i].pairList())
		if err != nil {
			return nil, nil, fmt.Errorf("core: region %d: %w", i, err)
		}
		pd.Regions = append(pd.Regions, *rp)
		total.Blocks += st.Blocks
		total.Perturbed += st.Perturbed
		total.Wraps += st.Wraps
		total.NewZeros += st.NewZeros
	}
	return pd, total, nil
}

func (s *Scheme) encryptRegion(img *jpegc.Image, roi ROI, pairs []*keys.Pair) (*RegionParams, *Stats, error) {
	_, _, bw, _ := roi.Blocks()
	rp := &RegionParams{
		ROI:     roi,
		Variant: s.params.Variant,
		MR:      s.params.MR,
		K:       s.params.K,
		Wrap:    s.params.wrap(),
		BaseBW:  bw,
	}
	if len(pairs) == 1 {
		rp.KeyID = pairs[0].ID
	} else {
		rp.KeyIDs = make([]string, len(pairs))
		for i, p := range pairs {
			rp.KeyIDs[i] = p.ID
		}
	}
	recordWraps := s.params.wrap() == WrapRecorded
	recordSupport := s.params.Variant == VariantZ && s.params.TransformSupport
	variantZ := s.params.Variant == VariantZ

	// Per-pair AC delta tables, computed once per region instead of once per
	// coefficient (the range-matrix modulo chain is block-invariant).
	tables := make([]acDeltas, len(pairs))
	for i := range pairs {
		tables[i] = s.acDeltaTable(pairs[i])
	}

	// (channel, block-row) units are independent: each writes a disjoint set
	// of blocks and collects its own stats and index lists. Chunk results are
	// merged in chunk order below, reproducing the exact (ci, by, bx, zz)
	// append order of the serial loop at any worker count. Subsampled chroma
	// contributes its (smaller) window rows to the flattened range; on 4:4:4
	// images every window equals the luma rect, so the chunking — and the
	// output — is bit-identical to the legacy ci*bh+by walk.
	wins := imageWindows(img, roi)
	offs := rowOffsets(wins)
	type rowOut struct {
		st                  Stats
		wInd, zInd, support PosList
	}
	parts := parallel.Map(offs[len(wins)], regionRowGrain, func(lo, hi int) *rowOut {
		out := &rowOut{}
		for r := lo; r < hi; r++ {
			ci, wy := rowComp(offs, r)
			w := &wins[ci]
			comp := &img.Comps[ci]
			for wx := 0; wx < w.cbw; wx++ {
				// Key index k is the region-local index of the block's
				// co-located luma block on the ORIGINAL region grid (for
				// full-resolution components this is just by*bw+bx).
				lbx, lby := w.lumaBlock(wx, wy)
				k := lby*bw + lbx
				pi := (k / keys.MatrixLen) % len(pairs)
				pair, tbl := pairs[pi], &tables[pi]
				b := comp.Block(w.cbx0+wx, w.cby0+wy)
				out.st.Blocks++

				// DC (always perturbed, all variants).
				e, wrapped := wrapAdd(b[0], s.dcDelta(pair, k), dcOffset, dcModulus)
				b[0] = e
				out.st.Perturbed++
				if wrapped {
					out.st.Wraps++
					if recordWraps {
						out.wInd = append(out.wInd, CoeffPos{Channel: uint8(ci), Block: uint32(k), Coeff: 0})
					}
				}

				// AC positions with a nonzero delta, in zigzag order.
				for _, zz8 := range tbl.Active {
					zz := int(zz8)
					nat := dct.ZigZag[zz]
					if variantZ && b[nat] == 0 {
						continue // Algorithm 2 skips original zeros
					}
					e, wrapped := wrapAdd(b[nat], tbl.Deltas[zz], acOffset, acModulus)
					b[nat] = e
					out.st.Perturbed++
					pos := CoeffPos{Channel: uint8(ci), Block: uint32(k), Coeff: uint8(zz)}
					if wrapped {
						out.st.Wraps++
						if recordWraps {
							out.wInd = append(out.wInd, pos)
						}
					}
					if variantZ {
						if e == 0 {
							out.st.NewZeros++
							out.zInd = append(out.zInd, pos)
						}
						if recordSupport {
							out.support = append(out.support, pos)
						}
					}
				}
			}
		}
		return out
	})

	st := &Stats{}
	for _, p := range parts {
		st.Blocks += p.st.Blocks
		st.Perturbed += p.st.Perturbed
		st.Wraps += p.st.Wraps
		st.NewZeros += p.st.NewZeros
		rp.WInd = append(rp.WInd, p.wInd...)
		rp.ZInd = append(rp.ZInd, p.zInd...)
		rp.Support = append(rp.Support, p.support...)
	}
	return rp, st, nil
}
