package core

import (
	"bytes"
	"math"
	"testing"

	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
	"puppies/internal/keys"
	"puppies/internal/transform"
)

// Ablation benchmarks for the design decisions documented in DESIGN.md §4.
// Run with: go test -bench Ablation ./internal/core/

// BenchmarkAblationWrapPolicy quantifies what WrapRecorded buys: recovery
// fidelity after a pixel-domain PSP transform, with and without the wrap
// index.
func BenchmarkAblationWrapPolicy(b *testing.B) {
	b.ReportAllocs()
	base := benchNaturalImage(b, 128, 96)
	spec := transform.Spec{Op: transform.OpScale, FactorX: 0.5, FactorY: 0.5}
	roi := ROI{X: 0, Y: 0, W: 128, H: 96}

	measure := func(wrap WrapPolicy) float64 {
		sch, err := NewScheme(Params{Variant: VariantC, MR: 32, K: 8, Wrap: wrap})
		if err != nil {
			b.Fatal(err)
		}
		pair := keys.NewPairDeterministic(1)
		img := base.Clone()
		pd, _, err := sch.EncryptImage(img, []RegionAssignment{{ROI: roi, Pair: pair}})
		if err != nil {
			b.Fatal(err)
		}
		pertPix, err := img.ToPlanar()
		if err != nil {
			b.Fatal(err)
		}
		transformed, err := transform.ApplyPlanar(pertPix, spec)
		if err != nil {
			b.Fatal(err)
		}
		pdT := *pd
		pdT.Transform = spec
		got, err := ReconstructPixels(transformed, &pdT, map[string]*keys.Pair{pair.ID: pair})
		if err != nil {
			b.Fatal(err)
		}
		basePix, err := base.ToPlanar()
		if err != nil {
			b.Fatal(err)
		}
		want, err := transform.ApplyPlanar(basePix, spec)
		if err != nil {
			b.Fatal(err)
		}
		psnr, err := imgplane.ImagePSNR(got, want)
		if err != nil {
			b.Fatal(err)
		}
		if math.IsInf(psnr, 1) || psnr > 99 {
			psnr = 99
		}
		return psnr
	}

	var modular, recorded float64
	for i := 0; i < b.N; i++ {
		modular = measure(WrapModular)
		recorded = measure(WrapRecorded)
	}
	b.ReportMetric(modular, "modular-psnr-dB")
	b.ReportMetric(recorded, "recorded-psnr-dB")
}

// BenchmarkAblationHuffmanTables quantifies the PuPPIeS-C mechanism: the
// same perturbed image encoded with default Annex K tables vs per-image
// optimized tables.
func BenchmarkAblationHuffmanTables(b *testing.B) {
	b.ReportAllocs()
	base := benchNaturalImage(b, 128, 96)
	sch, err := NewScheme(Params{Variant: VariantC, MR: 32, K: 8})
	if err != nil {
		b.Fatal(err)
	}
	img := base.Clone()
	pair := keys.NewPairDeterministic(2)
	if _, _, err := sch.EncryptImage(img, []RegionAssignment{
		{ROI: ROI{X: 0, Y: 0, W: 128, H: 96}, Pair: pair},
	}); err != nil {
		b.Fatal(err)
	}
	origSize, err := base.EncodedSize(jpegc.EncodeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	var defSize, optSize int64
	for i := 0; i < b.N; i++ {
		if defSize, err = img.EncodedSize(jpegc.EncodeOptions{Tables: jpegc.TablesDefault}); err != nil {
			b.Fatal(err)
		}
		if optSize, err = img.EncodedSize(jpegc.EncodeOptions{Tables: jpegc.TablesOptimized}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(defSize)/float64(origSize), "default-tables-ratio")
	b.ReportMetric(float64(optSize)/float64(origSize), "optimized-tables-ratio")
}

// BenchmarkAblationZeroSkip quantifies the -Z mechanism against -C on the
// same image: perturbed size plus public-parameter cost.
func BenchmarkAblationZeroSkip(b *testing.B) {
	b.ReportAllocs()
	base := benchNaturalImage(b, 128, 96)
	origSize, err := base.EncodedSize(jpegc.EncodeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	measure := func(v Variant) (float64, float64) {
		sch, err := NewScheme(Params{Variant: v, MR: 32, K: 8})
		if err != nil {
			b.Fatal(err)
		}
		img := base.Clone()
		pair := keys.NewPairDeterministic(3)
		pd, _, err := sch.EncryptImage(img, []RegionAssignment{
			{ROI: ROI{X: 0, Y: 0, W: 128, H: 96}, Pair: pair},
		})
		if err != nil {
			b.Fatal(err)
		}
		size, err := img.EncodedSize(jpegc.EncodeOptions{Tables: jpegc.TablesOptimized})
		if err != nil {
			b.Fatal(err)
		}
		return float64(size) / float64(origSize), float64(pd.ParamsSizeBytes())
	}
	var cRatio, zRatio, zParams float64
	for i := 0; i < b.N; i++ {
		cRatio, _ = measure(VariantC)
		zRatio, zParams = measure(VariantZ)
	}
	b.ReportMetric(cRatio, "C-image-ratio")
	b.ReportMetric(zRatio, "Z-image-ratio")
	b.ReportMetric(zParams, "Z-params-bytes")
}

// BenchmarkScanPathAllocs isolates the entropy scan path the PR 4 fast path
// targets: one optimized-tables encode (statistics pass + table build +
// scan write) and one decode of a perturbed image, with allocations as the
// headline number. Before the pooled zero-allocation rework this path cost
// ~14.7k allocs/op (see BENCH_PR2.json, BenchmarkAblationHuffmanTables).
func BenchmarkScanPathAllocs(b *testing.B) {
	base := benchNaturalImage(b, 128, 96)
	sch, err := NewScheme(Params{Variant: VariantC, MR: 32, K: 8})
	if err != nil {
		b.Fatal(err)
	}
	img := base.Clone()
	pair := keys.NewPairDeterministic(6)
	if _, _, err := sch.EncryptImage(img, []RegionAssignment{
		{ROI: ROI{X: 0, Y: 0, W: 128, H: 96}, Pair: pair},
	}); err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := img.Encode(&buf, jpegc.EncodeOptions{Tables: jpegc.TablesOptimized}); err != nil {
		b.Fatal(err)
	}
	encoded := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := img.EncodedSize(jpegc.EncodeOptions{Tables: jpegc.TablesOptimized}); err != nil {
			b.Fatal(err)
		}
		if _, err := jpegc.Decode(bytes.NewReader(encoded)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncryptThroughput measures raw perturbation speed (pixels/op
// reported via custom metric, Table V's core loop).
func BenchmarkEncryptThroughput(b *testing.B) {
	base := benchNaturalImage(b, 512, 384)
	sch, err := NewScheme(Params{Variant: VariantZ, MR: 32, K: 8})
	if err != nil {
		b.Fatal(err)
	}
	pair := keys.NewPairDeterministic(4)
	roi := ROI{X: 0, Y: 0, W: 512, H: 384}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img := base.Clone()
		if _, _, err := sch.EncryptImage(img, []RegionAssignment{{ROI: roi, Pair: pair}}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(512 * 384 * 3)
}

// BenchmarkDecryptThroughput measures recovery speed.
func BenchmarkDecryptThroughput(b *testing.B) {
	base := benchNaturalImage(b, 512, 384)
	sch, err := NewScheme(Params{Variant: VariantZ, MR: 32, K: 8})
	if err != nil {
		b.Fatal(err)
	}
	pair := keys.NewPairDeterministic(5)
	roi := ROI{X: 0, Y: 0, W: 512, H: 384}
	img := base.Clone()
	pd, _, err := sch.EncryptImage(img, []RegionAssignment{{ROI: roi, Pair: pair}})
	if err != nil {
		b.Fatal(err)
	}
	pairs := map[string]*keys.Pair{pair.ID: pair}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := img.Clone()
		if _, err := DecryptImage(work, pd, pairs); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(512 * 384 * 3)
}

// benchNaturalImage builds a natural-statistics coefficient image for
// benchmarks (mirrors naturalImage without *testing.T).
func benchNaturalImage(b *testing.B, w, h int) *jpegc.Image {
	b.Helper()
	planar, err := imgplane.New(w, h, 3)
	if err != nil {
		b.Fatal(err)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			planar.Planes[0].Pix[i] = float32(128 + 80*math.Sin(float64(x)/7)*math.Cos(float64(y)/9))
			planar.Planes[1].Pix[i] = float32(128 + 30*math.Sin(float64(x+2*y)/17))
			planar.Planes[2].Pix[i] = float32(128 + 30*math.Cos(float64(2*x-y)/19))
		}
	}
	img, err := jpegc.FromPlanar(planar, jpegc.Options{Quality: 75})
	if err != nil {
		b.Fatal(err)
	}
	return img
}
