package core

import (
	"math"
	"testing"

	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
	"puppies/internal/keys"
	"puppies/internal/transform"
)

// encryptFixture encrypts a natural image with one ROI and returns
// (original, perturbed, public data, key).
func encryptFixture(t *testing.T, params Params, w, h int, roi ROI) (*jpegc.Image, *jpegc.Image, *PublicData, *keys.Pair) {
	t.Helper()
	base := naturalImage(t, w, h, 75)
	sch, err := NewScheme(params)
	if err != nil {
		t.Fatal(err)
	}
	pair := keys.NewPairDeterministic(1234)
	img := base.Clone()
	pd, _, err := sch.EncryptImage(img, []RegionAssignment{{ROI: roi, Pair: pair}})
	if err != nil {
		t.Fatal(err)
	}
	return base, img, pd, pair
}

func TestReconstructCoeffLosslessOps(t *testing.T) {
	roi := ROI{X: 16, Y: 8, W: 32, H: 24}
	for _, v := range allVariants() {
		params, _ := NewParams(v, LevelMedium)
		base, img, pd, pair := encryptFixture(t, params, 64, 48, roi)
		pairs := map[string]*keys.Pair{pair.ID: pair}

		for _, op := range []transform.Op{
			transform.OpNone, transform.OpRotate90, transform.OpRotate180,
			transform.OpRotate270, transform.OpFlipH, transform.OpFlipV,
		} {
			spec := transform.Spec{Op: op}
			timg, err := transform.Apply(img, spec)
			if err != nil {
				t.Fatalf("%s/%s: PSP transform: %v", v, op, err)
			}
			pubT := *pd
			pubT.Transform = spec

			got, err := ReconstructCoeff(timg, &pubT, pairs)
			if err != nil {
				t.Fatalf("%s/%s: reconstruct: %v", v, op, err)
			}
			want, err := transform.Apply(base, spec)
			if err != nil {
				t.Fatal(err)
			}
			if !coeffEqual(got, want) {
				t.Errorf("%s/%s: reconstruction not exact", v, op)
			}
		}
	}
}

func TestReconstructCoeffAlignedCrop(t *testing.T) {
	roi := ROI{X: 16, Y: 8, W: 32, H: 24}
	params, _ := NewParams(VariantZ, LevelMedium)
	base, img, pd, pair := encryptFixture(t, params, 64, 48, roi)
	pairs := map[string]*keys.Pair{pair.ID: pair}

	// Crop cutting through the ROI: keeps the right part of the region.
	spec := transform.Spec{Op: transform.OpCrop, X: 24, Y: 0, W: 40, H: 32}
	timg, err := transform.Apply(img, spec)
	if err != nil {
		t.Fatal(err)
	}
	pubT := *pd
	pubT.Transform = spec
	got, err := ReconstructCoeff(timg, &pubT, pairs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := transform.Apply(base, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !coeffEqual(got, want) {
		t.Error("cropped reconstruction not exact")
	}
}

func TestCropPublicDataDropsAndRebases(t *testing.T) {
	img := naturalImage(t, 96, 64, 75)
	params, _ := NewParams(VariantC, LevelMedium)
	sch, _ := NewScheme(params)
	p1 := keys.NewPairDeterministic(1)
	p2 := keys.NewPairDeterministic(2)
	pd, _, err := sch.EncryptImage(img, []RegionAssignment{
		{ROI: ROI{X: 0, Y: 0, W: 16, H: 16}, Pair: p1},
		{ROI: ROI{X: 64, Y: 32, W: 32, H: 32}, Pair: p2},
	})
	if err != nil {
		t.Fatal(err)
	}
	cropped, err := CropPublicData(pd, 48, 16, 48, 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(cropped.Regions) != 1 {
		t.Fatalf("expected 1 surviving region, got %d", len(cropped.Regions))
	}
	r := cropped.Regions[0]
	if r.KeyID != p2.ID {
		t.Error("wrong region survived")
	}
	// Original region 2 spans x 64..96, crop starts at 48 -> region at x=16.
	if r.ROI != (ROI{X: 16, Y: 16, W: 32, H: 32}) {
		t.Errorf("rebased ROI = %+v", r.ROI)
	}
	if r.BaseBX != 0 || r.BaseBY != 0 {
		t.Errorf("base offset (%d,%d), want (0,0) for fully-contained region", r.BaseBX, r.BaseBY)
	}
	if _, err := CropPublicData(pd, 3, 0, 8, 8); err == nil {
		t.Error("unaligned crop accepted")
	}
	if _, err := CropPublicData(pd, 0, 0, 200, 8); err == nil {
		t.Error("oversized crop accepted")
	}
}

func TestReconstructCompressed(t *testing.T) {
	roi := ROI{X: 0, Y: 0, W: 64, H: 48}
	params, _ := NewParams(VariantC, LevelMedium)
	base, img, pd, pair := encryptFixture(t, params, 64, 48, roi)
	pairs := map[string]*keys.Pair{pair.ID: pair}

	got, err := ReconstructCompressed(img, pd, pairs, 40)
	if err != nil {
		t.Fatal(err)
	}
	want, err := transform.Recompress(base, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !coeffEqual(got, want) {
		t.Error("compression reconstruction does not match recompressed original")
	}
}

// psnrOn computes PSNR between two planar images.
func psnrOn(t *testing.T, a, b *imgplane.Image) float64 {
	t.Helper()
	p, err := imgplane.ImagePSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestReconstructPixelsExactUnderWrapRecorded(t *testing.T) {
	roi := ROI{X: 16, Y: 16, W: 32, H: 24}
	specs := []transform.Spec{
		{Op: transform.OpScale, FactorX: 0.5, FactorY: 0.5},
		{Op: transform.OpScale, FactorX: 1.5, FactorY: 1.25},
		{Op: transform.OpRotate, Angle: 30},
		{Op: transform.OpFilter, Kernel: "gaussian3"},
		{Op: transform.OpCrop, X: 10, Y: 6, W: 40, H: 30}, // unaligned
		{Op: transform.OpNone},
	}
	variants := []Params{
		{Variant: VariantB, Wrap: WrapRecorded},
		{Variant: VariantC, MR: 32, K: 8, Wrap: WrapRecorded},
		{Variant: VariantZ, MR: 32, K: 8, Wrap: WrapRecorded, TransformSupport: true},
	}
	for _, params := range variants {
		base, img, pd, pair := encryptFixture(t, params, 64, 48, roi)
		pairs := map[string]*keys.Pair{pair.ID: pair}

		// The PSP decodes the perturbed JPEG to pixels and transforms them.
		perturbedPix, err := img.ToPlanar()
		if err != nil {
			t.Fatal(err)
		}
		origPix, err := base.ToPlanar()
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range specs {
			transformed, err := transform.ApplyPlanar(perturbedPix, spec)
			if err != nil {
				t.Fatalf("%s/%s: %v", params.Variant, spec.Op, err)
			}
			pubT := *pd
			pubT.Transform = spec
			got, err := ReconstructPixels(transformed, &pubT, pairs)
			if err != nil {
				t.Fatalf("%s/%s: %v", params.Variant, spec.Op, err)
			}
			want, err := transform.ApplyPlanar(origPix, spec)
			if err != nil {
				t.Fatal(err)
			}
			psnr := psnrOn(t, got, want)
			if psnr < 55 {
				t.Errorf("%s/%s: PSNR %.1f dB, want >= 55 (exact up to float32 precision)",
					params.Variant, spec.Op, psnr)
			}
		}
	}
}

func TestReconstructPixelsDegradedUnderWrapModular(t *testing.T) {
	roi := ROI{X: 16, Y: 16, W: 32, H: 24}
	params := Params{Variant: VariantB, Wrap: WrapModular}
	base, img, pd, pair := encryptFixture(t, params, 64, 48, roi)
	pairs := map[string]*keys.Pair{pair.ID: pair}

	perturbedPix, _ := img.ToPlanar()
	origPix, _ := base.ToPlanar()
	spec := transform.Spec{Op: transform.OpScale, FactorX: 0.5, FactorY: 0.5}
	transformed, err := transform.ApplyPlanar(perturbedPix, spec)
	if err != nil {
		t.Fatal(err)
	}
	pubT := *pd
	pubT.Transform = spec
	got, err := ReconstructPixels(transformed, &pubT, pairs)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := transform.ApplyPlanar(origPix, spec)
	psnr := psnrOn(t, got, want)
	// DC perturbations wrap about half the time, so modular recovery under a
	// pixel-domain transform must be visibly lossy — this is the ablation
	// that motivates WrapRecorded (DESIGN.md §4).
	if psnr > 40 {
		t.Errorf("WrapModular pixel recovery PSNR %.1f dB; expected degradation (< 40)", psnr)
	}
}

func TestReconstructPixelsRequiresSupportForZ(t *testing.T) {
	roi := ROI{X: 16, Y: 16, W: 32, H: 24}
	params := Params{Variant: VariantZ, MR: 32, K: 8, Wrap: WrapRecorded} // no TransformSupport
	_, img, pd, pair := encryptFixture(t, params, 64, 48, roi)
	pairs := map[string]*keys.Pair{pair.ID: pair}
	perturbedPix, _ := img.ToPlanar()
	spec := transform.Spec{Op: transform.OpScale, FactorX: 0.5, FactorY: 0.5}
	transformed, _ := transform.ApplyPlanar(perturbedPix, spec)
	pubT := *pd
	pubT.Transform = spec
	if _, err := ReconstructPixels(transformed, &pubT, pairs); err == nil {
		t.Error("VariantZ pixel reconstruction without support list should error")
	}
}

func TestReconstructPixelsMissingKeyLeavesRegionHidden(t *testing.T) {
	roi := ROI{X: 16, Y: 16, W: 32, H: 24}
	params := Params{Variant: VariantC, MR: 32, K: 8, Wrap: WrapRecorded}
	base, img, pd, pair := encryptFixture(t, params, 64, 48, roi)
	_ = pair

	perturbedPix, _ := img.ToPlanar()
	origPix, _ := base.ToPlanar()
	spec := transform.Spec{Op: transform.OpScale, FactorX: 0.5, FactorY: 0.5}
	transformed, _ := transform.ApplyPlanar(perturbedPix, spec)
	pubT := *pd
	pubT.Transform = spec
	got, err := ReconstructPixels(transformed, &pubT, map[string]*keys.Pair{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := transform.ApplyPlanar(origPix, spec)
	psnr := psnrOn(t, got, want)
	if psnr > 40 {
		t.Errorf("without keys the region should stay hidden (PSNR %.1f dB)", psnr)
	}
}

func TestPerturbationHidesContent(t *testing.T) {
	// The perturbed ROI must look nothing like the original (the privacy
	// property). Compare pixel PSNR over the ROI only.
	roi := ROI{X: 0, Y: 0, W: 64, H: 48}
	for _, v := range allVariants() {
		for _, level := range []PrivacyLevel{LevelMedium, LevelHigh} {
			params, _ := NewParams(v, level)
			base, img, _, _ := encryptFixture(t, params, 64, 48, roi)
			origPix, _ := base.ToPlanar()
			pertPix, _ := img.ToPlanar()
			psnr := psnrOn(t, origPix, pertPix)
			if psnr > 20 {
				t.Errorf("%s/%s: perturbed image too similar to original (PSNR %.1f dB)", v, level, psnr)
			}
		}
	}
}

func TestShadowImageZeroOutsideROI(t *testing.T) {
	roi := ROI{X: 16, Y: 16, W: 16, H: 16}
	params := Params{Variant: VariantC, MR: 32, K: 8, Wrap: WrapRecorded}
	_, _, pd, pair := encryptFixture(t, params, 64, 48, roi)
	shadow, err := ShadowImage(pd, map[string]*keys.Pair{pair.ID: pair})
	if err != nil {
		t.Fatal(err)
	}
	for ci, plane := range shadow.Planes {
		for y := 0; y < plane.H; y++ {
			for x := 0; x < plane.W; x++ {
				inside := roi.Contains(x, y)
				v := plane.At(x, y)
				if !inside && v != 0 {
					t.Fatalf("shadow nonzero outside ROI at (%d,%d) channel %d: %v", x, y, ci, v)
				}
			}
		}
	}
	// The shadow must be nonzero somewhere inside the ROI.
	var energy float64
	for _, plane := range shadow.Planes {
		for y := roi.Y; y < roi.Y+roi.H; y++ {
			for x := roi.X; x < roi.X+roi.W; x++ {
				energy += math.Abs(float64(plane.At(x, y)))
			}
		}
	}
	if energy == 0 {
		t.Error("shadow has no energy inside the ROI")
	}
}
