package core

import (
	"fmt"

	"puppies/internal/dct"
	"puppies/internal/jpegc"
	"puppies/internal/keys"
	"puppies/internal/parallel"
	"puppies/internal/transform"
)

// DecryptRegion reverses the perturbation of one single-key region in place
// (scenario 1, Lemma III.1). The image must be in the same geometry the
// region parameters describe. Multi-key regions (§IV-D) go through
// DecryptImage.
func DecryptRegion(img *jpegc.Image, rp *RegionParams, pair *keys.Pair) error {
	if pair == nil {
		return fmt.Errorf("core: nil key pair")
	}
	if len(rp.KeyIDs) > 0 {
		return fmt.Errorf("core: region uses %d key pairs; use DecryptImage", len(rp.KeyIDs))
	}
	if pair.ID != rp.KeyID {
		return fmt.Errorf("core: key %s does not match region key %s", pair.ID, rp.KeyID)
	}
	return decryptRegionBlocks(img, rp, func(int) *keys.Pair { return pair })
}

// decryptRegionBlocks reverses the perturbation of every block whose pair
// is resolvable; getPair returns nil for blocks whose key the receiver does
// not hold (those stay perturbed).
func decryptRegionBlocks(img *jpegc.Image, rp *RegionParams, getPair func(k int) *keys.Pair) error {
	if err := img.Validate(); err != nil {
		return err
	}
	if err := rp.ROI.Validate(img.W, img.H); err != nil {
		return err
	}
	sch, err := NewScheme(Params{Variant: rp.Variant, MR: rp.MR, K: rp.K, Wrap: rp.Wrap})
	if err != nil {
		return err
	}

	_, _, bw, bh := rp.ROI.Blocks()
	baseBW := rp.BaseBW
	if baseBW == 0 {
		baseBW = bw
	}
	zind := newPosBitset(rp.ZInd, len(img.Comps), rp, bw, bh, baseBW)
	defer zind.release()
	variantZ := rp.Variant == VariantZ

	// (channel, block-row) units mutate disjoint blocks in place; no output
	// ordering is involved, so results are identical at any worker count.
	// Windows mirror the encrypt-side projection: subsampled chroma walks
	// its native (smaller) block window, keyed by the co-located luma block.
	wins := imageWindows(img, rp.ROI)
	offs := rowOffsets(wins)
	parallel.For(offs[len(wins)], regionRowGrain, func(lo, hi int) {
		cache := newDeltaCache(sch)
		for r := lo; r < hi; r++ {
			ci, wy := rowComp(offs, r)
			w := &wins[ci]
			comp := &img.Comps[ci]
			for wx := 0; wx < w.cbw; wx++ {
				lbx, lby := w.lumaBlock(wx, wy)
				k := (rp.BaseBY+lby)*baseBW + (rp.BaseBX + lbx)
				pair := getPair(k)
				if pair == nil {
					continue
				}
				tbl := cache.table(pair)
				b := comp.Block(w.cbx0+wx, w.cby0+wy)

				b[0] = wrapSub(b[0], sch.dcDelta(pair, k), dcOffset, dcModulus)

				for _, zz8 := range tbl.Active {
					zz := int(zz8)
					nat := dct.ZigZag[zz]
					// A stored zero was perturbed only if recorded in ZInd.
					if variantZ && b[nat] == 0 && !zind.test(ci, k, zz) {
						continue
					}
					b[nat] = wrapSub(b[nat], tbl.Deltas[zz], acOffset, acModulus)
				}
			}
		}
	})
	return nil
}

// DecryptImage decrypts every region (or, for §IV-D multi-key regions,
// every block stripe) whose key is available in pairs, in place. It returns
// the number of regions whose keys were all available; regions or stripes
// without keys are left perturbed, which is the personalized-privacy
// behaviour of §III-C ("the receiver may only get part of these matrices").
func DecryptImage(img *jpegc.Image, pd *PublicData, pairs map[string]*keys.Pair) (int, error) {
	if err := pd.Validate(); err != nil {
		return 0, err
	}
	if img.W != pd.W || img.H != pd.H {
		return 0, fmt.Errorf("core: image is %dx%d but public data says %dx%d", img.W, img.H, pd.W, pd.H)
	}
	if err := checkImageSampling(img, pd); err != nil {
		return 0, err
	}
	n := 0
	for i := range pd.Regions {
		rp := &pd.Regions[i]
		full, any := true, false
		for _, id := range rp.AllKeyIDs() {
			if _, ok := pairs[id]; ok {
				any = true
			} else {
				full = false
			}
		}
		if !any {
			continue
		}
		err := decryptRegionBlocks(img, rp, func(k int) *keys.Pair {
			return pairs[rp.KeyIDForBlock(k)]
		})
		if err != nil {
			return n, fmt.Errorf("core: region %d: %w", i, err)
		}
		if full {
			n++
		}
	}
	return n, nil
}

// inverseSpec returns the transform that undoes a lossless
// coefficient-domain spec.
func inverseSpec(spec transform.Spec) (transform.Spec, error) {
	switch spec.Op {
	case transform.OpNone:
		return spec, nil
	case transform.OpRotate90:
		return transform.Spec{Op: transform.OpRotate270}, nil
	case transform.OpRotate180:
		return transform.Spec{Op: transform.OpRotate180}, nil
	case transform.OpRotate270:
		return transform.Spec{Op: transform.OpRotate90}, nil
	case transform.OpFlipH, transform.OpFlipV:
		return spec, nil
	default:
		return transform.Spec{}, fmt.Errorf("core: %s is not an invertible coefficient-domain op", spec.Op)
	}
}

// ReconstructCoeff recovers the transformed original from a PSP-transformed
// perturbed image when the transform ran in the coefficient domain
// (rotations by 90-degree multiples, flips, block-aligned crops). Recovery
// is exact: these transforms are losslessly invertible (or, for crops, the
// region parameters are re-based), so decryption happens in the original
// geometry and the transform is replayed.
//
// The returned image is what the PSP's transform would have produced from
// the unperturbed original.
func ReconstructCoeff(timg *jpegc.Image, pd *PublicData, pairs map[string]*keys.Pair) (*jpegc.Image, error) {
	if err := pd.Validate(); err != nil {
		return nil, err
	}
	spec := pd.Transform
	switch spec.Op {
	case transform.OpNone:
		out := timg.Clone()
		if _, err := DecryptImage(out, pd, pairs); err != nil {
			return nil, err
		}
		return out, nil

	case transform.OpRotate90, transform.OpRotate180, transform.OpRotate270,
		transform.OpFlipH, transform.OpFlipV:
		inv, err := inverseSpec(spec)
		if err != nil {
			return nil, err
		}
		orig, err := transform.Apply(timg, inv)
		if err != nil {
			return nil, err
		}
		if _, err := DecryptImage(orig, pd, pairs); err != nil {
			return nil, err
		}
		return transform.Apply(orig, spec)

	case transform.OpCrop:
		if !spec.IsCoefficientDomain() {
			return nil, fmt.Errorf("core: unaligned crop is a pixel-domain transform; use ReconstructPixels")
		}
		cropped, err := CropPublicData(pd, spec.X, spec.Y, spec.W, spec.H)
		if err != nil {
			return nil, err
		}
		out := timg.Clone()
		if _, err := DecryptImage(out, cropped, pairs); err != nil {
			return nil, err
		}
		return out, nil

	case transform.OpCompress:
		return nil, fmt.Errorf("core: compression recovery needs the stored image; use ReconstructCompressed")

	default:
		return nil, fmt.Errorf("core: %s is a pixel-domain transform; use ReconstructPixels", spec.Op)
	}
}

// CropPublicData rewrites public data for a block-aligned PSP-side crop:
// region rectangles are intersected with the crop window, re-based into
// crop coordinates, and their Base* fields updated so DC indexing still
// follows the original region grid.
func CropPublicData(pd *PublicData, x, y, w, h int) (*PublicData, error) {
	if x%dct.BlockSize != 0 || y%dct.BlockSize != 0 || w%dct.BlockSize != 0 || h%dct.BlockSize != 0 {
		return nil, fmt.Errorf("core: crop (%d,%d,%d,%d) not block-aligned", x, y, w, h)
	}
	if w <= 0 || h <= 0 || x < 0 || y < 0 || x+w > pd.W || y+h > pd.H {
		return nil, fmt.Errorf("core: crop (%d,%d,%d,%d) outside %dx%d", x, y, w, h, pd.W, pd.H)
	}
	if len(pd.Sampling) > 0 {
		// A subsampled stored image can only be cropped on its MCU grid —
		// anything finer would split chroma blocks, which has no
		// coefficient-domain representation.
		maxH, maxV := maxSampling(pd.Sampling)
		crop := ROI{X: x, Y: y, W: w, H: h}
		if !crop.AlignedToMCU(pd.W, pd.H, maxH, maxV) {
			return nil, fmt.Errorf("core: crop (%d,%d,%d,%d) not aligned to the %dx%d-pixel MCU grid of this subsampled image",
				x, y, w, h, dct.BlockSize*maxH, dct.BlockSize*maxV)
		}
	}
	out := &PublicData{
		W: w, H: h, Channels: pd.Channels,
		LumQuant: pd.LumQuant, ChromQuant: pd.ChromQuant,
		Sampling:  append([]CompSampling(nil), pd.Sampling...),
		Transform: transform.Spec{Op: transform.OpNone},
	}
	window := ROI{X: x, Y: y, W: w, H: h}
	for i := range pd.Regions {
		rp := pd.Regions[i] // copy
		inter, ok := rp.ROI.Intersect(window)
		if !ok {
			continue
		}
		baseBW := rp.BaseBW
		if baseBW == 0 {
			baseBW = rp.ROI.W / dct.BlockSize
		}
		// Block offset of the surviving part inside the original region grid.
		dBX := (inter.X - rp.ROI.X) / dct.BlockSize
		dBY := (inter.Y - rp.ROI.Y) / dct.BlockSize
		rp.BaseBX += dBX
		rp.BaseBY += dBY
		rp.BaseBW = baseBW
		rp.ROI = ROI{X: inter.X - x, Y: inter.Y - y, W: inter.W, H: inter.H}
		out.Regions = append(out.Regions, rp)
	}
	return out, nil
}

// ReconstructCompressed implements compression support (paper §IV-C.2):
// given the stored perturbed image and both quantization contexts, the
// receiver first recovers the original coefficients and then replays the
// PSP's recompression, producing exactly what the PSP would have served
// for an unperturbed original.
func ReconstructCompressed(stored *jpegc.Image, pd *PublicData, pairs map[string]*keys.Pair, quality int) (*jpegc.Image, error) {
	out := stored.Clone()
	if _, err := DecryptImage(out, pd, pairs); err != nil {
		return nil, err
	}
	return transform.Recompress(out, quality)
}
