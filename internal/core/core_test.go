package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"puppies/internal/dct"
	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
	"puppies/internal/keys"
)

// naturalImage builds a coefficient image with natural statistics (smooth
// content, many zero AC coefficients) via the real encoder path.
func naturalImage(t testing.TB, w, h int, quality int) *jpegc.Image {
	t.Helper()
	planar, err := imgplane.New(w, h, 3)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			planar.Planes[0].Pix[i] = float32(128 + 80*math.Sin(float64(x)/7)*math.Cos(float64(y)/9))
			planar.Planes[1].Pix[i] = float32(128 + 30*math.Sin(float64(x+2*y)/17))
			planar.Planes[2].Pix[i] = float32(128 + 30*math.Cos(float64(2*x-y)/19))
		}
	}
	img, err := jpegc.FromPlanar(planar, jpegc.Options{Quality: quality})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func coeffEqual(a, b *jpegc.Image) bool {
	if a.W != b.W || a.H != b.H || len(a.Comps) != len(b.Comps) {
		return false
	}
	for ci := range a.Comps {
		for bi := range a.Comps[ci].Blocks {
			if a.Comps[ci].Blocks[bi] != b.Comps[ci].Blocks[bi] {
				return false
			}
		}
	}
	return true
}

func regionDiffers(a, b *jpegc.Image, roi ROI) bool {
	bx0, by0, bw, bh := roi.Blocks()
	for ci := range a.Comps {
		for by := 0; by < bh; by++ {
			for bx := 0; bx < bw; bx++ {
				if *a.Comps[ci].Block(bx0+bx, by0+by) != *b.Comps[ci].Block(bx0+bx, by0+by) {
					return true
				}
			}
		}
	}
	return false
}

func TestRangeMatrixLevels(t *testing.T) {
	// Low: only DC perturbed.
	q, err := RangeMatrix(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q[0] != 2048 {
		t.Errorf("low Q[0] = %d, want 2048", q[0])
	}
	for i := 1; i < 64; i++ {
		if q[i] != 1 {
			t.Errorf("low Q[%d] = %d, want 1", i, q[i])
		}
	}

	// Medium: K=8 perturbed positions with decaying ranges floored at mR=32.
	q, err = RangeMatrix(32, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{2048, 1024, 512, 256, 128, 64, 32, 32}
	for i, w := range want {
		if q[i] != w {
			t.Errorf("medium Q[%d] = %d, want %d", i, q[i], w)
		}
	}
	for i := 8; i < 64; i++ {
		if q[i] != 1 {
			t.Errorf("medium Q[%d] = %d, want 1", i, q[i])
		}
	}

	// High: everything full range.
	q, err = RangeMatrix(2048, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if q[i] != 2048 {
			t.Errorf("high Q[%d] = %d, want 2048", i, q[i])
		}
	}

	if _, err := RangeMatrix(0, 1); err == nil {
		t.Error("mR=0 accepted")
	}
	if _, err := RangeMatrix(1, 0); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := RangeMatrix(4096, 1); err == nil {
		t.Error("mR=4096 accepted")
	}
}

func TestSecureBits(t *testing.T) {
	type tc struct {
		level  PrivacyLevel
		wantDC int
	}
	var prev int
	for _, c := range []tc{{LevelLow, 704}, {LevelMedium, 704}, {LevelHigh, 704}} {
		mR, k, err := LevelParams(c.level)
		if err != nil {
			t.Fatal(err)
		}
		dc, ac, err := SecureBits(mR, k)
		if err != nil {
			t.Fatal(err)
		}
		if dc != c.wantDC {
			t.Errorf("%s: DC bits %d, want %d", c.level, dc, c.wantDC)
		}
		if ac < prev {
			t.Errorf("%s: AC bits %d not monotonically increasing (prev %d)", c.level, ac, prev)
		}
		prev = ac
	}
	// Low perturbs no AC; high perturbs all 63 at 11 bits each.
	_, acLow, _ := SecureBits(1, 1)
	if acLow != 0 {
		t.Errorf("low AC bits = %d, want 0", acLow)
	}
	_, acHigh, _ := SecureBits(2048, 64)
	if acHigh != 63*11 {
		t.Errorf("high AC bits = %d, want %d", acHigh, 63*11)
	}
}

func TestLevelParams(t *testing.T) {
	if _, _, err := LevelParams("extreme"); err == nil {
		t.Error("unknown level accepted")
	}
	mr, k, err := LevelParams(LevelMedium)
	if err != nil || mr != 32 || k != 8 {
		t.Errorf("medium = (%d,%d,%v)", mr, k, err)
	}
}

func TestWrapRoundTrip(t *testing.T) {
	f := func(bRaw, pRaw int32) bool {
		// DC domain.
		b := bRaw%2048 - 1024
		if b < -1024 {
			b += 2048
		}
		p := pRaw % 2048
		if p < 0 {
			p += 2048
		}
		e, _ := wrapAdd(b, p, dcOffset, dcModulus)
		if e < -1024 || e > 1023 {
			return false
		}
		if wrapSub(e, p, dcOffset, dcModulus) != b {
			return false
		}
		// AC domain.
		ba := bRaw % 1024
		pa := pRaw % 2047
		if pa < 0 {
			pa += 2047
		}
		ea, _ := wrapAdd(ba, pa, acOffset, acModulus)
		if ea < -1023 || ea > 1023 {
			return false
		}
		return wrapSub(ea, pa, acOffset, acModulus) == ba
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestWrapAddWrapFlag(t *testing.T) {
	e, wrapped := wrapAdd(1000, 100, dcOffset, dcModulus)
	if !wrapped || e != 1000+100-2048 {
		t.Errorf("wrapAdd(1000,100) = (%d,%v)", e, wrapped)
	}
	e, wrapped = wrapAdd(-1000, 100, dcOffset, dcModulus)
	if wrapped || e != -900 {
		t.Errorf("wrapAdd(-1000,100) = (%d,%v)", e, wrapped)
	}
}

func TestROIValidateAndAlign(t *testing.T) {
	valid := ROI{X: 8, Y: 16, W: 32, H: 24}
	if err := valid.Validate(100, 100); err != nil {
		t.Errorf("valid ROI rejected: %v", err)
	}
	bad := []ROI{
		{X: 3, Y: 0, W: 8, H: 8},
		{X: 0, Y: 0, W: 7, H: 8},
		{X: 0, Y: 0, W: 0, H: 8},
		{X: 96, Y: 0, W: 16, H: 8},
	}
	for _, r := range bad {
		if err := r.Validate(100, 100); err == nil {
			t.Errorf("ROI %+v accepted", r)
		}
	}

	aligned, err := ROI{X: 5, Y: 9, W: 10, H: 10}.AlignToBlocks(100, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := ROI{X: 0, Y: 8, W: 16, H: 16}
	if aligned != want {
		t.Errorf("aligned = %+v, want %+v", aligned, want)
	}
	if err := aligned.Validate(100, 100); err != nil {
		t.Errorf("aligned ROI invalid: %v", err)
	}
	if _, err := (ROI{X: 99, Y: 99, W: 1, H: 1}).AlignToBlocks(100, 100); err != nil {
		// (96..104) clipped to (96..96): empty? maxW = 96 -> x0=96, x1=96: empty.
		// This is the expected error path.
		return
	}
}

func TestROIIntersect(t *testing.T) {
	a := ROI{X: 0, Y: 0, W: 16, H: 16}
	b := ROI{X: 8, Y: 8, W: 16, H: 16}
	inter, ok := a.Intersect(b)
	if !ok || inter != (ROI{X: 8, Y: 8, W: 8, H: 8}) {
		t.Errorf("intersect = %+v, %v", inter, ok)
	}
	c := ROI{X: 32, Y: 32, W: 8, H: 8}
	if a.Overlaps(c) {
		t.Error("disjoint ROIs report overlap")
	}
	if !a.Contains(0, 0) || a.Contains(16, 16) {
		t.Error("Contains wrong")
	}
}

func allVariants() []Variant { return []Variant{VariantN, VariantB, VariantC, VariantZ} }

func allLevels() []PrivacyLevel { return []PrivacyLevel{LevelLow, LevelMedium, LevelHigh} }

func TestEncryptDecryptRoundTripAllVariantsAndLevels(t *testing.T) {
	base := naturalImage(t, 64, 48, 75)
	roi := ROI{X: 8, Y: 8, W: 32, H: 24}
	seed := int64(0)
	for _, v := range allVariants() {
		for _, level := range allLevels() {
			seed++
			params, err := NewParams(v, level)
			if err != nil {
				t.Fatal(err)
			}
			sch, err := NewScheme(params)
			if err != nil {
				t.Fatal(err)
			}
			pair := keys.NewPairDeterministic(seed)
			img := base.Clone()
			pd, st, err := sch.EncryptImage(img, []RegionAssignment{{ROI: roi, Pair: pair}})
			if err != nil {
				t.Fatalf("%s/%s: encrypt: %v", v, level, err)
			}
			if st.Blocks == 0 || st.Perturbed == 0 {
				t.Fatalf("%s/%s: no perturbation recorded: %+v", v, level, st)
			}
			if !regionDiffers(img, base, roi) {
				t.Fatalf("%s/%s: ROI unchanged after encryption", v, level)
			}
			// Outside the ROI nothing changes.
			outside := base.Clone()
			bx0, by0, bw, bh := roi.Blocks()
			for ci := range outside.Comps {
				for by := 0; by < bh; by++ {
					for bx := 0; bx < bw; bx++ {
						*outside.Comps[ci].Block(bx0+bx, by0+by) = *img.Comps[ci].Block(bx0+bx, by0+by)
					}
				}
			}
			if !coeffEqual(outside, img) {
				t.Fatalf("%s/%s: coefficients outside the ROI were modified", v, level)
			}

			n, err := DecryptImage(img, pd, map[string]*keys.Pair{pair.ID: pair})
			if err != nil {
				t.Fatalf("%s/%s: decrypt: %v", v, level, err)
			}
			if n != 1 {
				t.Fatalf("%s/%s: decrypted %d regions", v, level, n)
			}
			if !coeffEqual(img, base) {
				t.Fatalf("%s/%s: decrypt did not recover the original exactly", v, level)
			}
		}
	}
}

func TestEncryptedImageStillEncodable(t *testing.T) {
	base := naturalImage(t, 64, 64, 75)
	for _, v := range allVariants() {
		params, _ := NewParams(v, LevelHigh)
		sch, err := NewScheme(params)
		if err != nil {
			t.Fatal(err)
		}
		img := base.Clone()
		pair := keys.NewPairDeterministic(42)
		if _, _, err := sch.EncryptImage(img, []RegionAssignment{
			{ROI: ROI{X: 0, Y: 0, W: 64, H: 64}, Pair: pair},
		}); err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		// The perturbed image must be a valid baseline JPEG.
		if _, err := img.EncodedSize(sch.EncodeOptions()); err != nil {
			t.Fatalf("%s: perturbed image not encodable: %v", v, err)
		}
	}
}

func TestDecryptWrongKeyDoesNotRecover(t *testing.T) {
	base := naturalImage(t, 32, 32, 75)
	params, _ := NewParams(VariantC, LevelMedium)
	sch, _ := NewScheme(params)
	right := keys.NewPairDeterministic(1)
	wrong := keys.NewPairDeterministic(2)
	wrong.ID = right.ID // same ID, different secret
	img := base.Clone()
	roi := ROI{X: 0, Y: 0, W: 32, H: 32}
	pd, _, err := sch.EncryptImage(img, []RegionAssignment{{ROI: roi, Pair: right}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecryptImage(img, pd, map[string]*keys.Pair{wrong.ID: wrong}); err != nil {
		t.Fatal(err)
	}
	if coeffEqual(img, base) {
		t.Error("wrong key recovered the original")
	}
}

func TestDecryptMissingKeyLeavesRegionPerturbed(t *testing.T) {
	base := naturalImage(t, 64, 32, 75)
	params, _ := NewParams(VariantC, LevelMedium)
	sch, _ := NewScheme(params)
	p1 := keys.NewPairDeterministic(10)
	p2 := keys.NewPairDeterministic(11)
	r1 := ROI{X: 0, Y: 0, W: 24, H: 32}
	r2 := ROI{X: 32, Y: 0, W: 24, H: 32}
	img := base.Clone()
	pd, _, err := sch.EncryptImage(img, []RegionAssignment{
		{ROI: r1, Pair: p1}, {ROI: r2, Pair: p2},
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := DecryptImage(img, pd, map[string]*keys.Pair{p1.ID: p1})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("decrypted %d regions, want 1", n)
	}
	if regionDiffers(img, base, r1) {
		t.Error("granted region not recovered")
	}
	if !regionDiffers(img, base, r2) {
		t.Error("ungranted region was recovered")
	}
}

func TestZIndBookkeeping(t *testing.T) {
	// Force new zeros: small coefficients plus a perturbation range that can
	// cancel them.
	img := naturalImage(t, 128, 128, 50)
	params := Params{Variant: VariantZ, MR: 2048, K: 64}
	sch, err := NewScheme(params)
	if err != nil {
		t.Fatal(err)
	}
	base := img.Clone()
	pair := keys.NewPairDeterministic(77)
	roi := ROI{X: 0, Y: 0, W: 128, H: 128}
	pd, st, err := sch.EncryptImage(img, []RegionAssignment{{ROI: roi, Pair: pair}})
	if err != nil {
		t.Fatal(err)
	}
	if st.NewZeros != len(pd.Regions[0].ZInd) {
		t.Errorf("stats NewZeros %d != len(ZInd) %d", st.NewZeros, len(pd.Regions[0].ZInd))
	}
	if _, err := DecryptImage(img, pd, map[string]*keys.Pair{pair.ID: pair}); err != nil {
		t.Fatal(err)
	}
	if !coeffEqual(img, base) {
		t.Error("Z-variant round trip failed")
	}
}

func TestVariantZSkipsZeros(t *testing.T) {
	img := naturalImage(t, 64, 64, 60)
	base := img.Clone()
	params := Params{Variant: VariantZ, MR: 32, K: 8}
	sch, _ := NewScheme(params)
	pair := keys.NewPairDeterministic(5)
	roi := ROI{X: 0, Y: 0, W: 64, H: 64}
	if _, _, err := sch.EncryptImage(img, []RegionAssignment{{ROI: roi, Pair: pair}}); err != nil {
		t.Fatal(err)
	}
	// Every AC coefficient that was zero in the original must still be zero
	// in the perturbed image unless it is... zero stays zero by skipping.
	for ci := range base.Comps {
		for bi := range base.Comps[ci].Blocks {
			b0 := &base.Comps[ci].Blocks[bi]
			b1 := &img.Comps[ci].Blocks[bi]
			for i := 1; i < dct.BlockLen; i++ {
				if b0[i] == 0 && b1[i] != 0 {
					t.Fatalf("zero AC perturbed by VariantZ (comp %d block %d idx %d)", ci, bi, i)
				}
			}
		}
	}
}

func TestPosListPackUnpack(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(100)
		list := make(PosList, n)
		for i := range list {
			list[i] = CoeffPos{
				Channel: uint8(rng.Intn(4)),
				Block:   uint32(rng.Intn(maxPosBlock)),
				Coeff:   uint8(rng.Intn(64)),
			}
		}
		packed, err := list.Pack()
		if err != nil {
			t.Fatal(err)
		}
		if len(packed) != (n*28+7)/8 {
			t.Fatalf("packed length %d for %d records", len(packed), n)
		}
		back, err := UnpackPosList(packed, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range list {
			if back[i] != list[i] {
				t.Fatalf("record %d: %+v != %+v", i, back[i], list[i])
			}
		}
	}
	// Out-of-range records must be rejected.
	if _, err := (PosList{{Block: maxPosBlock}}).Pack(); err == nil {
		t.Error("oversized block index packed")
	}
	if _, err := (PosList{{Coeff: 64}}).Pack(); err == nil {
		t.Error("oversized coefficient index packed")
	}
	if _, err := UnpackPosList([]byte{1, 2}, 5); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestPublicDataEncodeDecode(t *testing.T) {
	img := naturalImage(t, 64, 48, 75)
	params := Params{Variant: VariantZ, MR: 32, K: 8, Wrap: WrapRecorded, TransformSupport: true}
	sch, _ := NewScheme(params)
	pair := keys.NewPairDeterministic(9)
	pd, _, err := sch.EncryptImage(img, []RegionAssignment{
		{ROI: ROI{X: 8, Y: 8, W: 32, H: 24}, Pair: pair},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := pd.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodePublicData(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != pd.W || back.H != pd.H || len(back.Regions) != 1 {
		t.Fatalf("decoded %+v", back)
	}
	r0, r1 := pd.Regions[0], back.Regions[0]
	if r0.ROI != r1.ROI || r0.KeyID != r1.KeyID || len(r0.ZInd) != len(r1.ZInd) ||
		len(r0.WInd) != len(r1.WInd) || len(r0.Support) != len(r1.Support) {
		t.Error("region params round trip mismatch")
	}
	if _, err := DecodePublicData([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestEncryptRejectsOverlapsAndBadInput(t *testing.T) {
	img := naturalImage(t, 64, 64, 75)
	params, _ := NewParams(VariantC, LevelMedium)
	sch, _ := NewScheme(params)
	pair := keys.NewPairDeterministic(1)
	overlap := []RegionAssignment{
		{ROI: ROI{X: 0, Y: 0, W: 32, H: 32}, Pair: pair},
		{ROI: ROI{X: 24, Y: 24, W: 32, H: 32}, Pair: pair},
	}
	if _, _, err := sch.EncryptImage(img, overlap); err == nil {
		t.Error("overlapping regions accepted")
	}
	if _, _, err := sch.EncryptImage(img, nil); err == nil {
		t.Error("empty region list accepted")
	}
	if _, _, err := sch.EncryptImage(img, []RegionAssignment{
		{ROI: ROI{X: 0, Y: 0, W: 32, H: 32}},
	}); err == nil {
		t.Error("nil key pair accepted")
	}
	if _, err := NewScheme(Params{Variant: "bogus"}); err == nil {
		t.Error("bogus variant accepted")
	}
	if _, err := NewScheme(Params{Variant: VariantC, MR: 0, K: 1}); err == nil {
		t.Error("bad mR accepted")
	}
}
