package core

import (
	"encoding/json"
	"errors"
	"fmt"

	"puppies/internal/dct"
	"puppies/internal/transform"
)

// PublicDataVersion is the current public-parameter envelope format. Encode
// stamps it; DecodePublicData accepts this version and the pre-versioning
// legacy form (0) and rejects anything newer with ErrUnsupportedVersion —
// silently misreading a future format would hand receivers wrong recovery
// parameters, which is worse than failing.
const PublicDataVersion = 1

// ErrUnsupportedVersion marks a public-parameter document written by a
// newer format than this build understands. Branch with errors.Is.
var ErrUnsupportedVersion = errors.New("core: unsupported public data version")

// CoeffPos identifies one coefficient inside a perturbed region: channel,
// region-local block index (in the *original* region grid, stable across
// PSP-side cropping) and zigzag coefficient position (0 = DC).
type CoeffPos struct {
	Channel uint8
	Block   uint32
	Coeff   uint8
}

// Packed position encoding (paper §IV-B.4): 28 bits per record — 2 bits for
// the channel ("layer"), 20 bits for the block index, 6 bits for the
// coefficient index. (The paper's prose says 2+16+6 bits yet calls the
// total 28; 20 block bits make the total correct and support
// high-resolution images, so that is what we pack.)
const (
	posBits      = 28
	maxPosBlock  = 1 << 20
	posChanBits  = 2
	posBlockBits = 20
	posCoeffBits = 6
)

// PosList is a list of coefficient positions serialized in the packed
// 28-bit format (base64 inside JSON).
type PosList []CoeffPos

// Pack serializes the list into the packed 28-bit bitstream.
func (l PosList) Pack() ([]byte, error) {
	out := make([]byte, (len(l)*posBits+7)/8)
	bit := 0
	put := func(v uint32, n int) {
		for i := n - 1; i >= 0; i-- {
			if v>>uint(i)&1 == 1 {
				out[bit/8] |= 1 << uint(7-bit%8)
			}
			bit++
		}
	}
	for _, p := range l {
		if p.Channel > 3 {
			return nil, fmt.Errorf("core: channel %d exceeds 2-bit field", p.Channel)
		}
		if p.Block >= maxPosBlock {
			return nil, fmt.Errorf("core: block index %d exceeds 20-bit field", p.Block)
		}
		if p.Coeff >= dct.BlockLen {
			return nil, fmt.Errorf("core: coefficient index %d exceeds 6-bit field", p.Coeff)
		}
		put(uint32(p.Channel), posChanBits)
		put(p.Block, posBlockBits)
		put(uint32(p.Coeff), posCoeffBits)
	}
	return out, nil
}

// UnpackPosList parses a packed bitstream containing n records.
func UnpackPosList(data []byte, n int) (PosList, error) {
	if need := (n*posBits + 7) / 8; len(data) != need {
		return nil, fmt.Errorf("core: packed position list is %d bytes, want %d for %d records",
			len(data), need, n)
	}
	out := make(PosList, n)
	bit := 0
	get := func(nBits int) uint32 {
		var v uint32
		for i := 0; i < nBits; i++ {
			v <<= 1
			if data[bit/8]>>uint(7-bit%8)&1 == 1 {
				v |= 1
			}
			bit++
		}
		return v
	}
	for i := 0; i < n; i++ {
		out[i] = CoeffPos{
			Channel: uint8(get(posChanBits)),
			Block:   get(posBlockBits),
			Coeff:   uint8(get(posCoeffBits)),
		}
	}
	return out, nil
}

// posListJSON is the wire form: record count + packed bytes.
type posListJSON struct {
	N      int    `json:"n"`
	Packed []byte `json:"packed,omitempty"`
}

// MarshalJSON implements json.Marshaler using the packed encoding.
func (l PosList) MarshalJSON() ([]byte, error) {
	packed, err := l.Pack()
	if err != nil {
		return nil, err
	}
	return json.Marshal(posListJSON{N: len(l), Packed: packed})
}

// UnmarshalJSON implements json.Unmarshaler.
func (l *PosList) UnmarshalJSON(data []byte) error {
	var w posListJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.N < 0 {
		return fmt.Errorf("core: negative position count %d", w.N)
	}
	got, err := UnpackPosList(w.Packed, w.N)
	if err != nil {
		return err
	}
	*l = got
	return nil
}

// SizeBytes returns the public storage cost of the list at the paper's
// 28-bits-per-record accounting.
func (l PosList) SizeBytes() int { return (len(l)*posBits + 7) / 8 }

// RegionParams is the public (non-secret) per-region data stored alongside
// the perturbed image (paper §III-C: "mR, K, position and size of ROI,
// ZInd, ID of the private matrix"). Leaking it does not break privacy.
type RegionParams struct {
	// ROI is the region rectangle in the stored image's coordinates.
	ROI ROI `json:"roi"`
	// Variant, MR, K echo the scheme parameters used for this region.
	Variant Variant `json:"variant"`
	MR      int     `json:"mr"`
	K       int     `json:"k"`
	// Wrap is the wraparound policy the region was encrypted with.
	Wrap WrapPolicy `json:"wrap"`
	// KeyID names the matrix pair that encrypted this region.
	KeyID string `json:"keyId"`
	// KeyIDs, when set, lists multiple matrix pairs cycled across the
	// region's block groups (the §IV-D extension: block group g of 64
	// blocks uses pair KeyIDs[g mod len]). KeyID is empty in that case.
	KeyIDs []string `json:"keyIds,omitempty"`
	// ZInd lists AC coefficients that became zero under perturbation
	// (VariantZ only, Algorithm 2).
	ZInd PosList `json:"zind,omitempty"`
	// WInd lists coefficients whose perturbation wrapped (WrapRecorded
	// policy only); needed for exact pixel-domain transform recovery.
	WInd PosList `json:"wind,omitempty"`
	// Support lists the AC coefficients that were actually perturbed
	// (VariantZ with TransformSupport only); pixel-domain shadow
	// reconstruction needs it because the receiver of a transformed image
	// cannot see which stored coefficients were zero.
	Support PosList `json:"support,omitempty"`

	// BaseBX/BaseBY/BaseBW locate this region inside the original region's
	// block grid; they change only when the PSP crops the image. The DC
	// perturbation index is (blockIndex mod 64) over the *original* grid,
	// so decryption after cropping must know the original origin and width.
	BaseBX int `json:"baseBx,omitempty"`
	BaseBY int `json:"baseBy,omitempty"`
	BaseBW int `json:"baseBw,omitempty"`
}

// ParamsSizeBytes is the storage cost of the region's public parameters at
// the paper's accounting: fixed header plus 28 bits per index record.
func (rp *RegionParams) ParamsSizeBytes() int {
	const header = 32 // ROI + variant + mR + K + key ID, conservative
	extraKeys := 0
	if len(rp.KeyIDs) > 1 {
		extraKeys = (len(rp.KeyIDs) - 1) * 16
	}
	return header + extraKeys + rp.ZInd.SizeBytes() + rp.WInd.SizeBytes() + rp.Support.SizeBytes()
}

// KeyIDForBlock returns the matrix-pair ID protecting original-grid block
// index k (§IV-D multi-matrix regions cycle pairs every 64 blocks).
func (rp *RegionParams) KeyIDForBlock(k int) string {
	if len(rp.KeyIDs) == 0 {
		return rp.KeyID
	}
	return rp.KeyIDs[(k/64)%len(rp.KeyIDs)]
}

// AllKeyIDs returns every pair ID the region references.
func (rp *RegionParams) AllKeyIDs() []string {
	if len(rp.KeyIDs) == 0 {
		return []string{rp.KeyID}
	}
	return append([]string(nil), rp.KeyIDs...)
}

// PublicData is everything the PSP stores publicly next to the perturbed
// image bytes.
type PublicData struct {
	// Version is the envelope format version. Zero (legacy documents
	// predating versioning) is read as the v1 layout; Encode always
	// stamps PublicDataVersion.
	Version  int `json:"v,omitempty"`
	W        int `json:"w"`
	H        int `json:"h"`
	Channels int `json:"channels"`
	// LumQuant and ChromQuant are the stored image's quantization tables;
	// receivers need them to build shadow ROIs and to replay recompression.
	LumQuant   dct.QuantTable `json:"lumQuant"`
	ChromQuant dct.QuantTable `json:"chromQuant"`
	// Sampling lists per-channel JPEG sampling factors for natively
	// subsampled images (4:2:0/4:2:2/4:4:0); empty means every channel is
	// full resolution (the legacy 4:4:4/grayscale layout), keeping those
	// documents byte-identical to earlier versions. Receivers need it to
	// project region windows onto the chroma block grids.
	Sampling []CompSampling `json:"sampling,omitempty"`
	// Regions holds one entry per perturbed ROI.
	Regions []RegionParams `json:"regions"`
	// Transform records what the PSP did to the stored image (OpNone if
	// untouched); receivers replay it on shadow ROIs.
	Transform transform.Spec `json:"transform"`
}

// Validate checks structural consistency.
func (pd *PublicData) Validate() error {
	if pd.Version < 0 || pd.Version > PublicDataVersion {
		return fmt.Errorf("%w: %d (this build reads <= %d)", ErrUnsupportedVersion, pd.Version, PublicDataVersion)
	}
	if pd.W <= 0 || pd.H <= 0 {
		return fmt.Errorf("core: public data has invalid dimensions %dx%d", pd.W, pd.H)
	}
	if pd.Channels != 1 && pd.Channels != 3 {
		return fmt.Errorf("core: public data has %d channels", pd.Channels)
	}
	if err := validateSampling(pd.Sampling, pd.Channels); err != nil {
		return err
	}
	for i := range pd.Regions {
		rp := &pd.Regions[i]
		if err := rp.ROI.Validate(pd.W, pd.H); err != nil {
			return fmt.Errorf("core: region %d: %w", i, err)
		}
		if !rp.Variant.Valid() {
			return fmt.Errorf("core: region %d: unknown variant %q", i, rp.Variant)
		}
		// Base fields index into the original region grid; negative values
		// (possible only in hand-crafted parameter files) would index key
		// matrices out of range.
		if rp.BaseBX < 0 || rp.BaseBY < 0 || rp.BaseBW < 0 {
			return fmt.Errorf("core: region %d: negative base offsets (%d,%d,%d)",
				i, rp.BaseBX, rp.BaseBY, rp.BaseBW)
		}
		if rp.KeyID == "" && len(rp.KeyIDs) == 0 {
			return fmt.Errorf("core: region %d: no key id", i)
		}
		if rp.KeyID != "" && len(rp.KeyIDs) > 0 {
			return fmt.Errorf("core: region %d: both KeyID and KeyIDs set", i)
		}
		for j, id := range rp.KeyIDs {
			if id == "" {
				return fmt.Errorf("core: region %d: empty key id at %d", i, j)
			}
		}
		for j := 0; j < i; j++ {
			if rp.ROI.Overlaps(pd.Regions[j].ROI) {
				return fmt.Errorf("core: regions %d and %d overlap", j, i)
			}
		}
	}
	return nil
}

// Encode serializes the public data as JSON, stamping the current format
// version.
func (pd *PublicData) Encode() ([]byte, error) {
	if err := pd.Validate(); err != nil {
		return nil, err
	}
	out := *pd
	out.Version = PublicDataVersion
	return json.Marshal(&out)
}

// DecodePublicData parses and validates serialized public data.
func DecodePublicData(data []byte) (*PublicData, error) {
	var pd PublicData
	if err := json.Unmarshal(data, &pd); err != nil {
		return nil, fmt.Errorf("core: decode public data: %w", err)
	}
	if err := pd.Validate(); err != nil {
		return nil, err
	}
	return &pd, nil
}

// ParamsSizeBytes sums the per-region parameter costs.
func (pd *PublicData) ParamsSizeBytes() int {
	total := 0
	for i := range pd.Regions {
		total += pd.Regions[i].ParamsSizeBytes()
	}
	return total
}
