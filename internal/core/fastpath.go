package core

import (
	"puppies/internal/dct"
	"puppies/internal/keys"
	"puppies/internal/parallel"
)

// Hot-path support for the per-block perturbation loops: precomputed
// per-pair delta tables (the AC delta at a zigzag position is invariant
// across blocks, so the range-matrix modulo chain runs once per pair, not
// once per coefficient) and pooled bitsets replacing the map-backed
// position sets on the decrypt and shadow paths.

// acDeltas is a per-pair AC perturbation table: Deltas[zz] is the delta at
// zigzag position zz, and Active lists the positions with nonzero delta in
// ascending order — for -C/-Z at K perturbed coefficients the block loop
// shrinks from 63 modulo chains to ~K table lookups.
type acDeltas struct {
	Deltas [dct.BlockLen]int32
	Active []uint8
}

// acDeltaTable materializes the AC delta table for one pair.
func (s *Scheme) acDeltaTable(pair *keys.Pair) acDeltas {
	var t acDeltas
	t.Active = make([]uint8, 0, dct.BlockLen-1)
	for zz := 1; zz < dct.BlockLen; zz++ {
		d := s.acDelta(pair, zz)
		t.Deltas[zz] = d
		if d != 0 {
			t.Active = append(t.Active, uint8(zz))
		}
	}
	return t
}

// deltaCache resolves pairs to their delta tables. Region loops see at
// most a handful of pairs (one, or the §IV-D cycle), so a linear scan
// beats a map.
type deltaCache struct {
	scheme *Scheme
	pairs  []*keys.Pair
	tables []acDeltas
}

func newDeltaCache(s *Scheme) *deltaCache { return &deltaCache{scheme: s} }

func (c *deltaCache) table(pair *keys.Pair) *acDeltas {
	for i, p := range c.pairs {
		if p == pair {
			return &c.tables[i]
		}
	}
	c.pairs = append(c.pairs, pair)
	c.tables = append(c.tables, c.scheme.acDeltaTable(pair))
	return &c.tables[len(c.tables)-1]
}

// posBitset is a region-shaped coefficient position set: one bit per
// (channel, region-local block, zigzag position). It replaces
// PosList.toSet's map on the decrypt/shadow hot paths — a test is two
// shifts and a mask instead of a map probe — and its backing array is
// pooled. Positions are stored with original-grid block indices (stable
// across PSP crops), so lookups rebase through the region's Base geometry;
// list entries outside the current window (cropped away) are dropped.
type posBitset struct {
	words                  []uint64
	bw, bh                 int
	baseBW, baseBX, baseBY int
	channels               int
}

// newPosBitset builds the set for a region window. A nil return means the
// empty set.
func newPosBitset(list PosList, channels int, rp *RegionParams, bw, bh, baseBW int) *posBitset {
	if len(list) == 0 {
		return nil
	}
	s := &posBitset{
		words:    parallel.GetUint64(channels * bw * bh), // 64 bits per block
		bw:       bw,
		bh:       bh,
		baseBW:   baseBW,
		baseBX:   rp.BaseBX,
		baseBY:   rp.BaseBY,
		channels: channels,
	}
	for _, p := range list {
		k := int(p.Block)
		bx := k%baseBW - s.baseBX
		by := k/baseBW - s.baseBY
		if int(p.Channel) >= channels || bx < 0 || bx >= bw || by < 0 || by >= bh {
			continue
		}
		word := (int(p.Channel)*bh+by)*bw + bx
		s.words[word] |= 1 << (p.Coeff & 63)
	}
	return s
}

// test reports whether (ci, k, zz) is in the set; k is an original-grid
// block index inside the window.
func (s *posBitset) test(ci, k, zz int) bool {
	if s == nil {
		return false
	}
	bx := k%s.baseBW - s.baseBX
	by := k/s.baseBW - s.baseBY
	word := (ci*s.bh+by)*s.bw + bx
	return s.words[word]&(1<<(zz&63)) != 0
}

// release returns the backing array to the pool.
func (s *posBitset) release() {
	if s != nil {
		parallel.PutUint64(s.words)
		s.words = nil
	}
}
