package core

// Modular coefficient arithmetic (Lemma III.1, generalized to an arbitrary
// modulus so the AC range [-1023, 1023] can use modulus 2047).
//
// Values live in [-offset, modulus-1-offset]; perturbations are normalized
// to [0, modulus-1]. Because perturbations are non-negative, a wrap (if any)
// is always a single downward wrap of exactly `modulus`.

const (
	dcOffset  = 1024
	dcModulus = 2048
	acOffset  = 1023
	acModulus = 2047
)

// wrapAdd computes e = ((b + p + offset) mod modulus) - offset and reports
// whether the addition wrapped.
func wrapAdd(b, p, offset, modulus int32) (e int32, wrapped bool) {
	s := b + p + offset
	if s >= modulus {
		return s - modulus - offset, true
	}
	return s - offset, false
}

// wrapSub inverts wrapAdd: b = ((e - p + offset) mod modulus) - offset,
// with the result normalized into [-offset, modulus-1-offset].
func wrapSub(e, p, offset, modulus int32) int32 {
	s := (e - p + offset) % modulus
	if s < 0 {
		s += modulus
	}
	return s - offset
}
