// Package core implements the PuPPIeS perturbation schemes: the paper's
// primary contribution.
//
// A region of interest (ROI) of a coefficient image is perturbed by adding
// secret matrix entries to its quantized DCT coefficients under modular
// arithmetic (Lemma III.1), so that the perturbed image remains a valid
// JPEG the photo-sharing platform can store, index and transform, while
// receivers holding the private matrices recover the region exactly.
//
// Four variants are provided (paper §IV-B):
//
//   - VariantN: every coefficient perturbed from one vector; all DC
//     components share one secret value (the paper's strawman).
//   - VariantB: DC perturbed by P_DC[k mod 64] (block-indexed), AC by
//     P_AC (full range). Robust but ~10x size blowup under default Huffman
//     tables.
//   - VariantC: AC perturbation narrowed by the range matrix Q' from
//     Algorithm 3; encode with optimized Huffman tables.
//   - VariantZ: like C but zero AC coefficients are skipped and
//     perturbations that create new zeros are recorded in the public index
//     set ZInd (Algorithm 2).
//
// Coefficient arithmetic: DC values live in [-1024, 1023] (modulus 2048,
// exactly Lemma III.1). AC values live in [-1023, 1023] (modulus 2047),
// because baseline JPEG Huffman coding cannot represent an AC value of
// -1024; the lemma's algebra is modulus-agnostic, so exact recovery is
// preserved. This deviation is documented in DESIGN.md.
package core

import (
	"fmt"
	"math"

	"puppies/internal/dct"
)

// Variant selects the perturbation scheme.
type Variant string

// The four schemes of §IV-B.
const (
	VariantN Variant = "puppies-n"
	VariantB Variant = "puppies-b"
	VariantC Variant = "puppies-c"
	VariantZ Variant = "puppies-z"
)

// Valid reports whether v names a known variant.
func (v Variant) Valid() bool {
	switch v {
	case VariantN, VariantB, VariantC, VariantZ:
		return true
	}
	return false
}

// WrapPolicy controls how coefficient wraparound interacts with PSP-side
// pixel-domain transforms (see DESIGN.md §4).
type WrapPolicy string

const (
	// WrapModular is exactly the paper's arithmetic. Recovery is exact with
	// no transform and under coefficient-domain transforms; pixel-domain
	// transform recovery is approximate wherever a coefficient wrapped.
	WrapModular WrapPolicy = "modular"
	// WrapRecorded additionally records wrapped coefficient positions as a
	// public parameter (WInd), restoring exact linearity so pixel-domain
	// transform recovery is exact as well.
	WrapRecorded WrapPolicy = "recorded"
)

// Valid reports whether w names a known policy.
func (w WrapPolicy) Valid() bool { return w == WrapModular || w == WrapRecorded }

// PrivacyLevel is the user-facing privacy setting (paper Table IV).
type PrivacyLevel string

// The three levels of Table IV.
const (
	LevelLow    PrivacyLevel = "low"
	LevelMedium PrivacyLevel = "medium"
	LevelHigh   PrivacyLevel = "high"
)

// LevelParams returns the (mR, K) pair for a privacy level (paper Table IV).
func LevelParams(l PrivacyLevel) (mR, k int, err error) {
	switch l {
	case LevelLow:
		return 1, 1, nil
	case LevelMedium:
		return 32, 8, nil
	case LevelHigh:
		return 2048, 64, nil
	default:
		return 0, 0, fmt.Errorf("core: unknown privacy level %q", l)
	}
}

// Params configures a Scheme.
type Params struct {
	// Variant selects the perturbation algorithm. Required.
	Variant Variant
	// MR is the minimum range of entries in Q' (Algorithm 3). Used by -C
	// and -Z. Range [1, 2048].
	MR int
	// K is the number of coefficients perturbed per block (Algorithm 3).
	// Used by -C and -Z. Range [1, 64].
	K int
	// Wrap selects the wraparound policy; zero value means WrapModular.
	Wrap WrapPolicy
	// TransformSupport requests the extra public parameters (-Z support
	// mask) needed to reconstruct after PSP-side pixel-domain transforms.
	TransformSupport bool
}

// NewParams builds Params for a variant at a named privacy level.
func NewParams(v Variant, level PrivacyLevel) (Params, error) {
	mR, k, err := LevelParams(level)
	if err != nil {
		return Params{}, err
	}
	return Params{Variant: v, MR: mR, K: k}, nil
}

// Validate checks parameter ranges.
func (p *Params) Validate() error {
	if !p.Variant.Valid() {
		return fmt.Errorf("core: unknown variant %q", p.Variant)
	}
	if p.Wrap != "" && !p.Wrap.Valid() {
		return fmt.Errorf("core: unknown wrap policy %q", p.Wrap)
	}
	if p.Variant == VariantC || p.Variant == VariantZ {
		if p.MR < 1 || p.MR > 2048 {
			return fmt.Errorf("core: mR %d out of range [1, 2048]", p.MR)
		}
		if p.K < 1 || p.K > 64 {
			return fmt.Errorf("core: K %d out of range [1, 64]", p.K)
		}
	}
	return nil
}

func (p *Params) wrap() WrapPolicy {
	if p.Wrap == "" {
		return WrapModular
	}
	return p.Wrap
}

// RangeMatrix implements Algorithm 3: the vectorized private range matrix
// Q', indexed by zigzag position. Lower frequencies get wider perturbation
// ranges (stronger protection); positions at or beyond K get range 1
// (no perturbation).
//
// Erratum note: the paper's listing assigns Q'[i] before testing i >= K,
// which would perturb K+1 coefficients and contradict both the text ("K is
// the number of coefficients the algorithm perturbs") and the low-level
// claim ("if K = 1, Algorithm 1 only perturbs DC"). We order the test
// first, which matches the stated semantics.
func RangeMatrix(mR, k int) ([dct.BlockLen]int32, error) {
	var q [dct.BlockLen]int32
	if mR < 1 || mR > 2048 {
		return q, fmt.Errorf("core: mR %d out of range [1, 2048]", mR)
	}
	if k < 1 || k > 64 {
		return q, fmt.Errorf("core: K %d out of range [1, 64]", k)
	}
	r := int32(2048)
	for i := 0; i < dct.BlockLen; i++ {
		if i >= k {
			r = 1
		}
		q[i] = r
		if int(r) > mR {
			r /= 2
		}
	}
	return q, nil
}

// SecureBits returns the brute-force search space of one matrix pair at the
// given parameters, in bits (paper §VI-A): 64 x 11 bits for P_DC plus the
// sum of log2(Q'[i]) over perturbed AC positions for P_AC.
//
// The paper reports 705/794/1335 bits for low/medium/high; computing from
// Algorithm 3 as printed gives different values (see EXPERIMENTS.md), so we
// report the computed numbers.
func SecureBits(mR, k int) (dcBits, acBits int, err error) {
	q, err := RangeMatrix(mR, k)
	if err != nil {
		return 0, 0, err
	}
	dcBits = dct.BlockLen * 11
	for i := 1; i < dct.BlockLen; i++ {
		if q[i] > 1 {
			acBits += int(math.Round(math.Log2(float64(q[i]))))
		}
	}
	return dcBits, acBits, nil
}
