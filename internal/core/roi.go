package core

import (
	"fmt"

	"puppies/internal/dct"
)

// ROI is a rectangular region of interest in pixel coordinates. PuPPIeS
// perturbation operates on whole 8x8 blocks, so encryption requires
// block-aligned ROIs; AlignToBlocks expands an arbitrary rectangle outward
// to the block grid.
type ROI struct {
	X int `json:"x"`
	Y int `json:"y"`
	W int `json:"w"`
	H int `json:"h"`
}

// Validate checks the ROI is block-aligned and inside a wxh image.
func (r ROI) Validate(w, h int) error {
	if r.W <= 0 || r.H <= 0 {
		return fmt.Errorf("core: ROI %+v has non-positive size", r)
	}
	if r.X < 0 || r.Y < 0 || r.X+r.W > w || r.Y+r.H > h {
		return fmt.Errorf("core: ROI %+v outside %dx%d image", r, w, h)
	}
	if r.X%dct.BlockSize != 0 || r.Y%dct.BlockSize != 0 ||
		r.W%dct.BlockSize != 0 || r.H%dct.BlockSize != 0 {
		return fmt.Errorf("core: ROI %+v not aligned to the %d-pixel block grid", r, dct.BlockSize)
	}
	return nil
}

// AlignToBlocks expands the ROI outward to the block grid and clips it to a
// wxh image. It returns an error if the result is empty.
func (r ROI) AlignToBlocks(w, h int) (ROI, error) {
	x0 := (r.X / dct.BlockSize) * dct.BlockSize
	y0 := (r.Y / dct.BlockSize) * dct.BlockSize
	x1 := ((r.X + r.W + dct.BlockSize - 1) / dct.BlockSize) * dct.BlockSize
	y1 := ((r.Y + r.H + dct.BlockSize - 1) / dct.BlockSize) * dct.BlockSize
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	maxW := (w / dct.BlockSize) * dct.BlockSize
	maxH := (h / dct.BlockSize) * dct.BlockSize
	if x1 > maxW {
		x1 = maxW
	}
	if y1 > maxH {
		y1 = maxH
	}
	if x1 <= x0 || y1 <= y0 {
		return ROI{}, fmt.Errorf("core: ROI %+v aligns to an empty region in %dx%d image", r, w, h)
	}
	return ROI{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}, nil
}

// AlignedToMCU reports whether the ROI sits on the MCU grid of a wxh image
// with maximum sampling factors (maxH, maxV) — MCUs are 8*maxH x 8*maxV
// pixels. Right/bottom edges may instead land on the last full block column
// or row of the image (valid block-aligned ROIs cannot extend further).
// MCU-aligned regions project onto chroma block grids without sharing any
// chroma block with a neighboring region, which native subsampled
// encryption requires.
func (r ROI) AlignedToMCU(w, h, maxH, maxV int) bool {
	gx := dct.BlockSize * maxH
	gy := dct.BlockSize * maxV
	edgeX := (w / dct.BlockSize) * dct.BlockSize
	edgeY := (h / dct.BlockSize) * dct.BlockSize
	return r.X%gx == 0 && r.Y%gy == 0 &&
		((r.X+r.W)%gx == 0 || r.X+r.W == edgeX) &&
		((r.Y+r.H)%gy == 0 || r.Y+r.H == edgeY)
}

// AlignToMCU expands the ROI outward to the MCU grid of a wxh image with
// maximum sampling (maxH, maxV), clipping to the block-aligned image bounds
// the same way AlignToBlocks does. The result satisfies AlignedToMCU.
func (r ROI) AlignToMCU(w, h, maxH, maxV int) (ROI, error) {
	gx := dct.BlockSize * maxH
	gy := dct.BlockSize * maxV
	x0 := (r.X / gx) * gx
	y0 := (r.Y / gy) * gy
	x1 := ((r.X + r.W + gx - 1) / gx) * gx
	y1 := ((r.Y + r.H + gy - 1) / gy) * gy
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if edgeX := (w / dct.BlockSize) * dct.BlockSize; x1 > edgeX {
		x1 = edgeX
	}
	if edgeY := (h / dct.BlockSize) * dct.BlockSize; y1 > edgeY {
		y1 = edgeY
	}
	if x1 <= x0 || y1 <= y0 {
		return ROI{}, fmt.Errorf("core: ROI %+v aligns to an empty MCU region in %dx%d image", r, w, h)
	}
	return ROI{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}, nil
}

// Blocks returns the ROI's block-grid origin and dimensions.
func (r ROI) Blocks() (bx, by, bw, bh int) {
	return r.X / dct.BlockSize, r.Y / dct.BlockSize, r.W / dct.BlockSize, r.H / dct.BlockSize
}

// Area returns the pixel area of the ROI.
func (r ROI) Area() int { return r.W * r.H }

// Intersect returns the overlap of two ROIs and whether it is non-empty.
func (r ROI) Intersect(o ROI) (ROI, bool) {
	x0 := max(r.X, o.X)
	y0 := max(r.Y, o.Y)
	x1 := min(r.X+r.W, o.X+o.W)
	y1 := min(r.Y+r.H, o.Y+o.H)
	if x1 <= x0 || y1 <= y0 {
		return ROI{}, false
	}
	return ROI{X: x0, Y: y0, W: x1 - x0, H: y1 - y0}, true
}

// Overlaps reports whether two ROIs share any pixels.
func (r ROI) Overlaps(o ROI) bool {
	_, ok := r.Intersect(o)
	return ok
}

// Contains reports whether the point (x, y) lies inside the ROI.
func (r ROI) Contains(x, y int) bool {
	return x >= r.X && x < r.X+r.W && y >= r.Y && y < r.Y+r.H
}
