package core

import (
	"testing"

	"puppies/internal/jpegc"
	"puppies/internal/keys"
	"puppies/internal/transform"
)

// multiFixture encrypts a whole image with three pairs cycled across block
// groups (§IV-D extension).
func multiFixture(t *testing.T, params Params) (*jpegc.Image, *jpegc.Image, *PublicData, []*keys.Pair) {
	t.Helper()
	// 96x96 = 144 blocks per channel: three 64-block groups (the third
	// partial), so all three pairs are exercised.
	base := naturalImage(t, 96, 96, 75)
	sch, err := NewScheme(params)
	if err != nil {
		t.Fatal(err)
	}
	pairs := []*keys.Pair{
		keys.NewPairDeterministic(301),
		keys.NewPairDeterministic(302),
		keys.NewPairDeterministic(303),
	}
	img := base.Clone()
	pd, _, err := sch.EncryptImage(img, []RegionAssignment{
		{ROI: ROI{X: 0, Y: 0, W: 96, H: 96}, Pairs: pairs},
	})
	if err != nil {
		t.Fatal(err)
	}
	return base, img, pd, pairs
}

func pairMap(pairs ...*keys.Pair) map[string]*keys.Pair {
	m := map[string]*keys.Pair{}
	for _, p := range pairs {
		m[p.ID] = p
	}
	return m
}

func TestMultiKeyRoundTrip(t *testing.T) {
	for _, v := range allVariants() {
		params, _ := NewParams(v, LevelMedium)
		base, img, pd, pairs := multiFixture(t, params)
		if len(pd.Regions[0].KeyIDs) != 3 || pd.Regions[0].KeyID != "" {
			t.Fatalf("%s: region key ids %v / %q", v, pd.Regions[0].KeyIDs, pd.Regions[0].KeyID)
		}
		n, err := DecryptImage(img, pd, pairMap(pairs...))
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if n != 1 {
			t.Fatalf("%s: %d regions fully decrypted", v, n)
		}
		if !coeffEqual(img, base) {
			t.Errorf("%s: multi-key round trip not exact", v)
		}
	}
}

func TestMultiKeyPartialDecryption(t *testing.T) {
	params, _ := NewParams(VariantC, LevelMedium)
	base, img, pd, pairs := multiFixture(t, params)

	// Holding only the first pair decrypts only its block stripes.
	n, err := DecryptImage(img, pd, pairMap(pairs[0]))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("partially-keyed region counted as fully decrypted")
	}
	rp := &pd.Regions[0]
	_, _, bw, _ := rp.ROI.Blocks()
	for ci := range img.Comps {
		for by := 0; by < 12; by++ {
			for bx := 0; bx < 12; bx++ {
				k := by*bw + bx
				got := *img.Comps[ci].Block(bx, by)
				want := *base.Comps[ci].Block(bx, by)
				holds := rp.KeyIDForBlock(k) == pairs[0].ID
				if holds && got != want {
					t.Fatalf("block %d (granted stripe) not recovered", k)
				}
				if !holds && got == want {
					t.Fatalf("block %d (ungranted stripe) was recovered", k)
				}
			}
		}
	}
	// Receiving the remaining pairs later completes recovery: decryption is
	// per-stripe, so the second pass must cover only the new stripes.
	if _, err := DecryptImage(img, pd, pairMap(pairs[1], pairs[2])); err != nil {
		t.Fatal(err)
	}
	if !coeffEqual(img, base) {
		t.Error("remaining key set did not complete recovery")
	}
}

func TestMultiKeyPublicDataRoundTrip(t *testing.T) {
	params, _ := NewParams(VariantZ, LevelMedium)
	_, _, pd, _ := multiFixture(t, params)
	data, err := pd.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodePublicData(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Regions[0].KeyIDs) != 3 {
		t.Errorf("key ids lost in serialization: %v", back.Regions[0].KeyIDs)
	}
}

func TestMultiKeyShadowReconstruction(t *testing.T) {
	params := Params{Variant: VariantC, MR: 32, K: 8, Wrap: WrapRecorded}
	base, img, pd, pairs := multiFixture(t, params)

	spec := transform.Spec{Op: transform.OpScale, FactorX: 0.5, FactorY: 0.5}
	pertPix, err := img.ToPlanar()
	if err != nil {
		t.Fatal(err)
	}
	transformed, err := transform.ApplyPlanar(pertPix, spec)
	if err != nil {
		t.Fatal(err)
	}
	pdT := *pd
	pdT.Transform = spec
	got, err := ReconstructPixels(transformed, &pdT, pairMap(pairs...))
	if err != nil {
		t.Fatal(err)
	}
	basePix, err := base.ToPlanar()
	if err != nil {
		t.Fatal(err)
	}
	want, err := transform.ApplyPlanar(basePix, spec)
	if err != nil {
		t.Fatal(err)
	}
	if p := psnrOn(t, got, want); p < 55 {
		t.Errorf("multi-key pixel reconstruction PSNR %.1f dB", p)
	}
}

func TestMultiKeyValidation(t *testing.T) {
	img := naturalImage(t, 32, 32, 75)
	params, _ := NewParams(VariantC, LevelMedium)
	sch, _ := NewScheme(params)
	p := keys.NewPairDeterministic(1)
	if _, _, err := sch.EncryptImage(img, []RegionAssignment{
		{ROI: ROI{X: 0, Y: 0, W: 32, H: 32}, Pair: p, Pairs: []*keys.Pair{p}},
	}); err == nil {
		t.Error("both Pair and Pairs accepted")
	}
	if _, _, err := sch.EncryptImage(img, []RegionAssignment{
		{ROI: ROI{X: 0, Y: 0, W: 32, H: 32}, Pairs: []*keys.Pair{p, nil}},
	}); err == nil {
		t.Error("nil pair in Pairs accepted")
	}
	// DecryptRegion refuses multi-key regions.
	_, img2, pd, pairs := multiFixture(t, params)
	if err := DecryptRegion(img2, &pd.Regions[0], pairs[0]); err == nil {
		t.Error("DecryptRegion accepted a multi-key region")
	}
}
