package core

import (
	"testing"

	"puppies/internal/dct"
	"puppies/internal/jpegc"
	"puppies/internal/keys"
)

// FuzzDecodePublicData exercises the public-parameter parser with arbitrary
// bytes: anything that parses must validate and must drive decryption
// without panicking. Run with:
//
//	go test -fuzz FuzzDecodePublicData ./internal/core
func FuzzDecodePublicData(f *testing.F) {
	// Seed: real public data from each variant.
	base := naturalImage(f, 64, 48, 75)
	for i, v := range allVariants() {
		params := Params{Variant: v, MR: 32, K: 8, Wrap: WrapRecorded, TransformSupport: v == VariantZ}
		sch, err := NewScheme(params)
		if err != nil {
			f.Fatal(err)
		}
		img := base.Clone()
		pair := keys.NewPairDeterministic(int64(i))
		pd, _, err := sch.EncryptImage(img, []RegionAssignment{
			{ROI: ROI{X: 8, Y: 8, W: 16, H: 16}, Pair: pair},
		})
		if err != nil {
			f.Fatal(err)
		}
		data, err := pd.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"w":64,"h":48,"channels":3}`))
	f.Add([]byte(`not json at all`))

	pair := keys.NewPairDeterministic(99)
	f.Fuzz(func(t *testing.T, data []byte) {
		pd, err := DecodePublicData(data)
		if err != nil {
			return
		}
		if vErr := pd.Validate(); vErr != nil {
			t.Fatalf("DecodePublicData returned invalid data: %v", vErr)
		}
		if pd.W > 512 || pd.H > 512 {
			return // keep the fuzz loop fast
		}
		img := quickImageSized(t, pd.W, pd.H, pd.Channels)
		// Force key-ID matches so the decrypt loops actually execute.
		pairs := map[string]*keys.Pair{}
		for i := range pd.Regions {
			for _, id := range pd.Regions[i].AllKeyIDs() {
				p := *pair
				p.ID = id
				pairs[id] = &p
			}
		}
		_, _ = DecryptImage(img, pd, pairs)
		_, _ = ShadowImage(pd, pairs)
	})
}

// quickImageSized builds a blank coefficient image matching fuzzed
// dimensions so decrypt loops can run against them.
func quickImageSized(t *testing.T, w, h, channels int) *jpegc.Image {
	t.Helper()
	if channels != 1 && channels != 3 {
		channels = 3
	}
	bw, bh := (w+7)/8, (h+7)/8
	img := &jpegc.Image{W: w, H: h, Comps: make([]jpegc.Component, channels)}
	for ci := range img.Comps {
		img.Comps[ci] = jpegc.Component{
			BlocksW: bw, BlocksH: bh,
			Blocks: make([]dct.Block, bw*bh),
			Quant:  dct.StdLuminanceQuant,
		}
	}
	return img
}
