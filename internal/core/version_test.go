package core

import (
	"bytes"
	"errors"
	"testing"

	"puppies/internal/dct"
)

func versionFixture() *PublicData {
	return &PublicData{
		W: 64, H: 48, Channels: 3,
		LumQuant:   dct.StdLuminanceQuant,
		ChromQuant: dct.StdChrominanceQuant,
		Regions: []RegionParams{{
			ROI:     ROI{X: 0, Y: 0, W: 16, H: 16},
			Variant: VariantC, MR: 32, K: 8,
			KeyID: "pair-1",
		}},
	}
}

func TestEncodeStampsCurrentVersion(t *testing.T) {
	raw, err := versionFixture().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`"v":1`)) {
		t.Fatalf("encoded params missing version stamp: %s", raw[:80])
	}
	pd, err := DecodePublicData(raw)
	if err != nil {
		t.Fatal(err)
	}
	if pd.Version != PublicDataVersion {
		t.Fatalf("decoded version %d, want %d", pd.Version, PublicDataVersion)
	}
}

func TestDecodeAcceptsLegacyUnversioned(t *testing.T) {
	pd := versionFixture()
	raw, err := pd.Encode()
	if err != nil {
		t.Fatal(err)
	}
	legacy := bytes.Replace(raw, []byte(`"v":1,`), nil, 1)
	got, err := DecodePublicData(legacy)
	if err != nil {
		t.Fatalf("legacy document rejected: %v", err)
	}
	if got.Version != 0 {
		t.Fatalf("legacy version = %d, want 0", got.Version)
	}
}

func TestDecodeRejectsFutureVersionTyped(t *testing.T) {
	raw, err := versionFixture().Encode()
	if err != nil {
		t.Fatal(err)
	}
	future := bytes.Replace(raw, []byte(`"v":1`), []byte(`"v":2`), 1)
	_, derr := DecodePublicData(future)
	if !errors.Is(derr, ErrUnsupportedVersion) {
		t.Fatalf("future version err = %v, want ErrUnsupportedVersion", derr)
	}
	negative := bytes.Replace(raw, []byte(`"v":1`), []byte(`"v":-3`), 1)
	if _, derr := DecodePublicData(negative); !errors.Is(derr, ErrUnsupportedVersion) {
		t.Fatalf("negative version err = %v", derr)
	}
}
