package core

import (
	"fmt"

	"puppies/internal/jpegc"
)

// Native subsampled geometry support. A protected region is defined on the
// luma block grid (ROIs are 8-pixel aligned in image coordinates), but on a
// 4:2:0/4:2:2/4:4:0 image the chroma components store fewer, larger-footprint
// blocks. The mapping rules (DESIGN.md §14):
//
//   - A region's window on component ci is the outward-rounded projection
//     of its luma block rectangle: chroma block cx covers luma blocks
//     [cx*rh, (cx+1)*rh) where rh = maxH/hs, so the window is
//     [floor(bx0/rh), ceil((bx0+bw)/rh)) (and likewise vertically). Every
//     chroma block overlapping the ROI is perturbed — privacy rounds
//     outward, never inward.
//   - A chroma block's key index k is the ORIGINAL-grid region-local index
//     of its top-left co-located luma block: the same k stream the luma
//     channel uses, so PosList records, §IV-D key cycling, and the Base*
//     crop rebasing all work unchanged in luma-grid space.
//   - EncryptImage requires MCU-aligned ROIs on subsampled images
//     (AlignedToMCU), which makes region windows exactly disjoint across
//     disjoint regions and the mapping stable under MCU-aligned crops.
//     The puppies facade falls back to Normalize444 when a caller's
//     regions cannot be MCU-aligned without overlapping.

// CompSampling is one component's JPEG sampling factors (1 or 2 each).
type CompSampling struct {
	H int `json:"h"`
	V int `json:"v"`
}

// samplingOf extracts per-component sampling factors. It returns nil for
// 4:4:4 and grayscale images, keeping public data byte-identical to the
// legacy layout for the common case.
func samplingOf(img *jpegc.Image) []CompSampling {
	if !img.Subsampled() {
		return nil
	}
	out := make([]CompSampling, len(img.Comps))
	for i := range img.Comps {
		h, v := img.Comps[i].Sampling()
		out[i] = CompSampling{H: h, V: v}
	}
	return out
}

// normSampling maps a possibly-nil sampling list to one entry per channel,
// zero values reading as 1 (the legacy 4:4:4 layout).
func normSampling(s []CompSampling, channels int) []CompSampling {
	out := make([]CompSampling, channels)
	for i := range out {
		out[i] = CompSampling{H: 1, V: 1}
		if i < len(s) {
			if s[i].H > 0 {
				out[i].H = s[i].H
			}
			if s[i].V > 0 {
				out[i].V = s[i].V
			}
		}
	}
	return out
}

func maxSampling(s []CompSampling) (maxH, maxV int) {
	maxH, maxV = 1, 1
	for _, cs := range s {
		if cs.H > maxH {
			maxH = cs.H
		}
		if cs.V > maxV {
			maxV = cs.V
		}
	}
	return maxH, maxV
}

// validateSampling checks a public-data sampling list: 1 or 2 per axis, and
// the first (luma) component at full resolution — the ROI grid is the luma
// grid, so a subsampled luma has no block-exact region geometry.
func validateSampling(s []CompSampling, channels int) error {
	if len(s) == 0 {
		return nil
	}
	if len(s) != channels {
		return fmt.Errorf("core: sampling list has %d entries for %d channels", len(s), channels)
	}
	for i, cs := range s {
		if cs.H < 1 || cs.H > 2 || cs.V < 1 || cs.V > 2 {
			return fmt.Errorf("core: channel %d sampling %dx%d out of range [1,2]", i, cs.H, cs.V)
		}
	}
	maxH, maxV := maxSampling(s)
	if s[0].H != maxH || s[0].V != maxV {
		return fmt.Errorf("core: luma sampling %dx%d below image maximum %dx%d", s[0].H, s[0].V, maxH, maxV)
	}
	return nil
}

// compWindow is a region's projection onto one component's block grid.
type compWindow struct {
	cbx0, cby0 int // window origin, component-grid blocks
	cbw, cbh   int // window size in component blocks
	rh, rv     int // luma blocks per component block (1 or 2)
	lbx0, lby0 int // window origin on the luma grid (ROI block origin)
	lbw, lbh   int // luma window size in blocks
}

// windowFor projects a region's luma block rectangle onto a component with
// sampling (hs, vs) under MCU geometry (maxH, maxV), rounding outward so
// every component block overlapping the ROI is inside the window.
func windowFor(roi ROI, hs, vs, maxH, maxV int) compWindow {
	bx0, by0, bw, bh := roi.Blocks()
	rh, rv := maxH/hs, maxV/vs
	w := compWindow{rh: rh, rv: rv, lbx0: bx0, lby0: by0, lbw: bw, lbh: bh}
	w.cbx0 = bx0 / rh
	w.cby0 = by0 / rv
	w.cbw = (bx0+bw+rh-1)/rh - w.cbx0
	w.cbh = (by0+bh+rv-1)/rv - w.cby0
	return w
}

// lumaBlock maps window-local component block (j, i) to the region-local
// luma block whose key protects it: the component block's top-left
// co-located luma block, clamped into the window. The clamp can only
// trigger on the left/top edge of a non-MCU-aligned window (the right/
// bottom edges round outward by construction), and the mapping is
// injective per component either way.
func (w *compWindow) lumaBlock(j, i int) (lbx, lby int) {
	lbx = (w.cbx0+j)*w.rh - w.lbx0
	if lbx < 0 {
		lbx = 0
	} else if lbx >= w.lbw {
		lbx = w.lbw - 1
	}
	lby = (w.cby0+i)*w.rv - w.lby0
	if lby < 0 {
		lby = 0
	} else if lby >= w.lbh {
		lby = w.lbh - 1
	}
	return lbx, lby
}

// imageWindows builds each component's region window from the image's own
// sampling factors.
func imageWindows(img *jpegc.Image, roi ROI) []compWindow {
	maxH, maxV := img.MaxSampling()
	out := make([]compWindow, len(img.Comps))
	for ci := range img.Comps {
		hs, vs := img.Comps[ci].Sampling()
		out[ci] = windowFor(roi, hs, vs, maxH, maxV)
	}
	return out
}

// pdWindows builds each channel's region window from public-data sampling.
func pdWindows(pd *PublicData, roi ROI) []compWindow {
	samp := normSampling(pd.Sampling, pd.Channels)
	maxH, maxV := maxSampling(samp)
	out := make([]compWindow, pd.Channels)
	for ci := range out {
		out[ci] = windowFor(roi, samp[ci].H, samp[ci].V, maxH, maxV)
	}
	return out
}

// rowOffsets flattens per-window row counts into prefix offsets for the
// (channel, block-row) parallel loops: unit r belongs to the component
// whose [offsets[ci], offsets[ci+1]) range contains it. For 4:4:4 images
// this reduces to the legacy ci*bh+by indexing, preserving chunk boundaries
// and merge order bit-exactly.
func rowOffsets(wins []compWindow) []int {
	offs := make([]int, len(wins)+1)
	for ci := range wins {
		offs[ci+1] = offs[ci] + wins[ci].cbh
	}
	return offs
}

// rowComp resolves a flattened row unit to (component, window row).
func rowComp(offs []int, r int) (ci, i int) {
	ci = 0
	for offs[ci+1] <= r {
		ci++
	}
	return ci, r - offs[ci]
}

// checkImageSampling verifies an image's geometry matches public data
// before coefficient-domain decryption: a geometry mismatch (e.g. a
// normalized 4:4:4 copy of a natively-subsampled upload) would silently
// decrypt garbage, because the perturbation was applied to native chroma
// blocks that no longer exist.
func checkImageSampling(img *jpegc.Image, pd *PublicData) error {
	samp := normSampling(pd.Sampling, pd.Channels)
	if len(img.Comps) != pd.Channels {
		return fmt.Errorf("core: image has %d channels, public data %d", len(img.Comps), pd.Channels)
	}
	for ci := range img.Comps {
		h, v := img.Comps[ci].Sampling()
		if h != samp[ci].H || v != samp[ci].V {
			return fmt.Errorf("core: channel %d sampling %dx%d does not match public data %dx%d (was the image re-sampled after protection?)",
				ci, h, v, samp[ci].H, samp[ci].V)
		}
	}
	return nil
}
