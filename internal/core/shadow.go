package core

import (
	"fmt"

	"puppies/internal/dct"
	"puppies/internal/imgplane"
	"puppies/internal/keys"
	"puppies/internal/parallel"
	"puppies/internal/transform"
)

// ShadowImage builds the pixel-domain "shadow" of every region whose key is
// present: a full-size image that is zero outside the ROIs and equals the
// perturbation's pixel contribution inside them (paper §IV-C.1). Subtracting
// the (identically transformed) shadow from a transformed perturbed image
// recovers the transformed original, because all PSP pixel-domain
// transforms are linear.
//
// Regions whose keys are missing contribute nothing (they stay perturbed in
// the final output, which is the intended personalized-privacy behaviour).
// VariantZ regions require the Support list (encrypt with TransformSupport).
func ShadowImage(pd *PublicData, pairs map[string]*keys.Pair) (*imgplane.Image, error) {
	if err := pd.Validate(); err != nil {
		return nil, err
	}
	shadow, err := imgplane.New(pd.W, pd.H, pd.Channels)
	if err != nil {
		return nil, err
	}
	// Subsampled channels accumulate block IDCTs at native resolution and are
	// upsampled once at the end with the same bilinear kernel the decoder's
	// ToPlanar uses. Upsampling is linear, so
	// up(native perturbed) - up(native shadow) = up(native original) exactly —
	// the shadow cancels the served pixels with no resampling residue.
	samp := normSampling(pd.Sampling, pd.Channels)
	maxH, maxV := maxSampling(samp)
	natives := make([]*imgplane.Plane, pd.Channels)
	for ci := range natives {
		if samp[ci].H == maxH && samp[ci].V == maxV {
			natives[ci] = shadow.Planes[ci]
			continue
		}
		pw := (pd.W*samp[ci].H + maxH - 1) / maxH
		ph := (pd.H*samp[ci].V + maxV - 1) / maxV
		p := imgplane.GetPlane(pw, ph)
		clear(p.Pix)
		natives[ci] = p
	}
	for i := range pd.Regions {
		rp := &pd.Regions[i]
		any := false
		for _, id := range rp.AllKeyIDs() {
			if _, ok := pairs[id]; ok {
				any = true
				break
			}
		}
		if !any {
			continue
		}
		if err := addRegionShadow(natives, pd, rp, pairs); err != nil {
			return nil, fmt.Errorf("core: region %d shadow: %w", i, err)
		}
	}
	for ci, p := range natives {
		if p != shadow.Planes[ci] {
			imgplane.ResizeBilinearInto(p, shadow.Planes[ci])
			imgplane.PutPlane(p)
		}
	}
	return shadow, nil
}

func addRegionShadow(natives []*imgplane.Plane, pd *PublicData, rp *RegionParams, pairs map[string]*keys.Pair) error {
	sch, err := NewScheme(Params{Variant: rp.Variant, MR: rp.MR, K: rp.K, Wrap: rp.Wrap})
	if err != nil {
		return err
	}
	if rp.Variant == VariantZ && len(rp.Support) == 0 {
		return fmt.Errorf("core: %s region has no support list; encrypt with TransformSupport for pixel-domain recovery", rp.Variant)
	}

	_, _, bw, bh := rp.ROI.Blocks()
	baseBW := rp.BaseBW
	if baseBW == 0 {
		baseBW = bw
	}
	wind := newPosBitset(rp.WInd, pd.Channels, rp, bw, bh, baseBW)
	defer wind.release()
	support := newPosBitset(rp.Support, pd.Channels, rp, bw, bh, baseBW)
	defer support.release()
	variantZ := rp.Variant == VariantZ

	// Each (channel, block-row) unit writes a disjoint 8-pixel band of its
	// channel's native plane, so the accumulation is race-free and
	// order-independent. Subsampled channels walk their native block windows
	// at chroma-grid pixel offsets, keyed by the co-located luma block.
	wins := pdWindows(pd, rp.ROI)
	offs := rowOffsets(wins)
	parallel.For(offs[len(wins)], regionRowGrain, func(lo, hi int) {
		cache := newDeltaCache(sch)
		for r := lo; r < hi; r++ {
			ci, wy := rowComp(offs, r)
			w := &wins[ci]
			quant := &pd.LumQuant
			if ci > 0 {
				quant = &pd.ChromQuant
			}
			plane := natives[ci]
			for wx := 0; wx < w.cbw; wx++ {
				lbx, lby := w.lumaBlock(wx, wy)
				k := (rp.BaseBY+lby)*baseBW + (rp.BaseBX + lbx)
				pair := pairs[rp.KeyIDForBlock(k)]
				if pair == nil {
					continue // stripe key not held: block stays perturbed
				}
				tbl := cache.table(pair)

				var raw dct.FloatBlock
				// DC contribution.
				delta := sch.dcDelta(pair, k)
				if wind.test(ci, k, 0) {
					delta -= dcModulus
				}
				raw[0] = float64(delta) * float64(quant[0])

				// AC contributions at positions with a nonzero delta.
				for _, zz8 := range tbl.Active {
					zz := int(zz8)
					if variantZ && !support.test(ci, k, zz) {
						continue
					}
					nat := dct.ZigZag[zz]
					d := tbl.Deltas[zz]
					if wind.test(ci, k, zz) {
						d -= acModulus
					}
					raw[nat] = float64(d) * float64(quant[nat])
				}

				spatial := dct.Inverse(&raw)
				for y := 0; y < dct.BlockSize; y++ {
					py := (w.cby0+wy)*dct.BlockSize + y
					for x := 0; x < dct.BlockSize; x++ {
						px := (w.cbx0+wx)*dct.BlockSize + x
						// Set ignores writes past the native plane edge
						// (partial edge blocks), matching the decoder's crop.
						plane.Set(px, py, plane.At(px, py)+float32(spatial[y*dct.BlockSize+x]))
					}
				}
			}
		}
	})
	return nil
}

// ReconstructPixels recovers the transformed original from a PSP-transformed
// perturbed image served as pixels (scenario 2 for pixel-domain transforms:
// scaling, arbitrary rotation, filtering, unaligned crops). The shadow is
// built in the original geometry, the PSP's transform (pd.Transform) is
// replayed on it, and the result subtracted.
//
// Exactness: exact under WrapRecorded; under WrapModular, wrapped
// coefficients (Stats.Wraps of the encryption) leave localized residue.
func ReconstructPixels(transformed *imgplane.Image, pd *PublicData, pairs map[string]*keys.Pair) (*imgplane.Image, error) {
	if err := pd.Transform.Validate(); err != nil {
		return nil, err
	}
	if !pd.Transform.IsLinear() {
		return nil, fmt.Errorf("core: %s is not linear; use ReconstructCompressed", pd.Transform.Op)
	}
	shadow, err := ShadowImage(pd, pairs)
	if err != nil {
		return nil, err
	}
	tShadow, err := transform.ApplyPlanar(shadow, pd.Transform)
	if err != nil {
		return nil, err
	}
	if transformed.Channels() != tShadow.Channels() {
		return nil, fmt.Errorf("core: transformed image has %d channels, shadow %d",
			transformed.Channels(), tShadow.Channels())
	}
	out := &imgplane.Image{Planes: make([]*imgplane.Plane, transformed.Channels())}
	for ci := range transformed.Planes {
		p, err := transformed.Planes[ci].Sub(tShadow.Planes[ci])
		if err != nil {
			return nil, fmt.Errorf("core: channel %d: %w (did the PSP apply the declared transform?)", ci, err)
		}
		out.Planes[ci] = p
	}
	return out, nil
}
