package core

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"

	"puppies/internal/keys"
)

// TestEncryptDecryptQuick is a property test over randomized parameters:
// for any variant, any legal (mR, K), any seed and any block-aligned ROI,
// decrypt(encrypt(img)) == img.
func TestEncryptDecryptQuick(t *testing.T) {
	base := naturalImage(t, 64, 48, 75)
	variants := allVariants()
	f := func(vIdx uint8, mrExp uint8, kRaw uint8, seed int64, bx, by, bw, bh uint8) bool {
		params := Params{
			Variant: variants[int(vIdx)%len(variants)],
			MR:      1 << (mrExp % 12), // 1..2048
			K:       1 + int(kRaw)%64,  // 1..64
		}
		sch, err := NewScheme(params)
		if err != nil {
			return false
		}
		// Block-aligned ROI inside 64x48 (8x6 blocks).
		x := int(bx) % 6
		y := int(by) % 4
		w := 1 + int(bw)%(8-x)
		h := 1 + int(bh)%(6-y)
		roi := ROI{X: x * 8, Y: y * 8, W: w * 8, H: h * 8}

		pair := keys.NewPairDeterministic(seed)
		img := base.Clone()
		pd, _, err := sch.EncryptImage(img, []RegionAssignment{{ROI: roi, Pair: pair}})
		if err != nil {
			return false
		}
		if _, err := DecryptImage(img, pd, map[string]*keys.Pair{pair.ID: pair}); err != nil {
			return false
		}
		return coeffEqual(img, base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestDecryptHostilePublicData feeds adversarially mutated public data to
// the decrypt path: it must error or no-op, never panic or index out of
// range.
func TestDecryptHostilePublicData(t *testing.T) {
	base := naturalImage(t, 64, 48, 75)
	params, _ := NewParams(VariantZ, LevelMedium)
	sch, _ := NewScheme(params)
	pair := keys.NewPairDeterministic(13)
	img := base.Clone()
	pd, _, err := sch.EncryptImage(img, []RegionAssignment{
		{ROI: ROI{X: 8, Y: 8, W: 32, H: 24}, Pair: pair},
	})
	if err != nil {
		t.Fatal(err)
	}
	good, err := pd.Encode()
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(f func(m map[string]interface{})) []byte {
		var doc map[string]interface{}
		if err := json.Unmarshal(good, &doc); err != nil {
			t.Fatal(err)
		}
		regions := doc["regions"].([]interface{})
		f(regions[0].(map[string]interface{}))
		out, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	hostile := [][]byte{
		mutate(func(r map[string]interface{}) { r["baseBx"] = -5 }),
		mutate(func(r map[string]interface{}) { r["baseBw"] = -1 }),
		mutate(func(r map[string]interface{}) { r["keyId"] = "" }),
		mutate(func(r map[string]interface{}) {
			r["roi"] = map[string]int{"x": 0, "y": 0, "w": 8192, "h": 8}
		}),
		mutate(func(r map[string]interface{}) { r["variant"] = "evil" }),
		mutate(func(r map[string]interface{}) {
			r["keyId"] = ""
			r["keyIds"] = []string{"a", ""}
		}),
	}
	for i, data := range hostile {
		pdBad, err := DecodePublicData(data)
		if err != nil {
			continue // rejected at parse/validate time: good
		}
		// If it parsed, decryption must not panic.
		work := img.Clone()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("hostile params %d caused panic: %v", i, r)
				}
			}()
			_, _ = DecryptImage(work, pdBad, map[string]*keys.Pair{pair.ID: pair})
		}()
	}
}

// TestZIndTamperingDoesNotPanic corrupts the ZInd list; recovery may be
// wrong (integrity is out of scope, §III-A) but must stay memory-safe.
func TestZIndTamperingDoesNotPanic(t *testing.T) {
	base := naturalImage(t, 64, 48, 60)
	sch, _ := NewScheme(Params{Variant: VariantZ, MR: 2048, K: 64})
	pair := keys.NewPairDeterministic(14)
	img := base.Clone()
	pd, _, err := sch.EncryptImage(img, []RegionAssignment{
		{ROI: ROI{X: 0, Y: 0, W: 64, H: 48}, Pair: pair},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	rp := &pd.Regions[0]
	for i := 0; i < 50; i++ {
		rp.ZInd = append(rp.ZInd, CoeffPos{
			Channel: uint8(rng.Intn(4)),
			Block:   uint32(rng.Intn(1 << 20)),
			Coeff:   uint8(rng.Intn(64)),
		})
	}
	work := img.Clone()
	if _, err := DecryptImage(work, pd, map[string]*keys.Pair{pair.ID: pair}); err != nil {
		t.Fatalf("tampered ZInd errored instead of degrading: %v", err)
	}
}

// TestPublicDataValidateRejects covers the validation matrix directly.
func TestPublicDataValidateRejects(t *testing.T) {
	base := naturalImage(t, 32, 32, 75)
	sch, _ := NewScheme(Params{Variant: VariantC, MR: 32, K: 8})
	pair := keys.NewPairDeterministic(15)
	img := base.Clone()
	pd, _, err := sch.EncryptImage(img, []RegionAssignment{
		{ROI: ROI{X: 0, Y: 0, W: 32, H: 32}, Pair: pair},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []func(p *PublicData){
		func(p *PublicData) { p.W = 0 },
		func(p *PublicData) { p.Channels = 2 },
		func(p *PublicData) { p.Regions[0].BaseBX = -1 },
		func(p *PublicData) { p.Regions[0].KeyID = "" },
		func(p *PublicData) { p.Regions[0].KeyIDs = []string{"x"} }, // both set
		func(p *PublicData) { p.Regions[0].Variant = "nope" },
		func(p *PublicData) {
			p.Regions = append(p.Regions, p.Regions[0]) // duplicate -> overlap
		},
	}
	for i, corrupt := range cases {
		bad := *pd
		bad.Regions = append([]RegionParams(nil), pd.Regions...)
		corrupt(&bad)
		if err := bad.Validate(); err == nil {
			t.Errorf("case %d: hostile public data validated", i)
		}
	}
}
