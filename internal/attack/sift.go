package attack

import (
	"math"
	"sort"

	"puppies/internal/imgplane"
)

// Keypoint is one scale-space feature with its 128-dimensional descriptor.
type Keypoint struct {
	X, Y        float64 // position in original image coordinates
	Octave      int
	Scale       float64
	Orientation float64
	Descriptor  [128]float32
}

// SIFTParams tune the (simplified) SIFT pipeline.
type SIFTParams struct {
	// Octaves is the number of pyramid octaves; zero selects 4.
	Octaves int
	// ContrastThreshold rejects weak DoG extrema; zero selects 4.0 (on
	// 0..255-scaled intensities).
	ContrastThreshold float64
	// EdgeRatio rejects edge-like extrema via the Hessian trace/det test;
	// zero selects 10.
	EdgeRatio float64
	// MaxKeypoints caps the output (strongest first); zero means 2000.
	MaxKeypoints int
}

func (p SIFTParams) defaults() SIFTParams {
	if p.Octaves == 0 {
		p.Octaves = 4
	}
	if p.ContrastThreshold == 0 {
		p.ContrastThreshold = 4
	}
	if p.EdgeRatio == 0 {
		p.EdgeRatio = 10
	}
	if p.MaxKeypoints == 0 {
		p.MaxKeypoints = 2000
	}
	return p
}

// gray extracts the luminance plane as float64.
type gray struct {
	w, h int
	pix  []float64
}

func grayOf(img *imgplane.Image) *gray {
	p := img.Planes[0]
	g := &gray{w: p.W, h: p.H, pix: make([]float64, len(p.Pix))}
	for i, v := range p.Pix {
		g.pix[i] = float64(v)
	}
	return g
}

func (g *gray) at(x, y int) float64 {
	if x < 0 {
		x = 0
	} else if x >= g.w {
		x = g.w - 1
	}
	if y < 0 {
		y = 0
	} else if y >= g.h {
		y = g.h - 1
	}
	return g.pix[y*g.w+x]
}

// gaussBlur applies separable Gaussian smoothing with the given sigma.
func (g *gray) gaussBlur(sigma float64) *gray {
	radius := int(math.Ceil(3 * sigma))
	if radius < 1 {
		radius = 1
	}
	kernel := make([]float64, 2*radius+1)
	var norm float64
	for i := range kernel {
		d := float64(i - radius)
		kernel[i] = math.Exp(-d * d / (2 * sigma * sigma))
		norm += kernel[i]
	}
	for i := range kernel {
		kernel[i] /= norm
	}
	tmp := &gray{w: g.w, h: g.h, pix: make([]float64, len(g.pix))}
	for y := 0; y < g.h; y++ {
		for x := 0; x < g.w; x++ {
			var sum float64
			for i, kw := range kernel {
				sum += kw * g.at(x+i-radius, y)
			}
			tmp.pix[y*g.w+x] = sum
		}
	}
	out := &gray{w: g.w, h: g.h, pix: make([]float64, len(g.pix))}
	for y := 0; y < g.h; y++ {
		for x := 0; x < g.w; x++ {
			var sum float64
			for i, kw := range kernel {
				sum += kw * tmp.at(x, y+i-radius)
			}
			out.pix[y*g.w+x] = sum
		}
	}
	return out
}

// downsample halves the image.
func (g *gray) downsample() *gray {
	w, h := g.w/2, g.h/2
	out := &gray{w: w, h: h, pix: make([]float64, w*h)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.pix[y*w+x] = g.pix[(2*y)*g.w+2*x]
		}
	}
	return out
}

func (g *gray) sub(o *gray) *gray {
	out := &gray{w: g.w, h: g.h, pix: make([]float64, len(g.pix))}
	for i := range g.pix {
		out.pix[i] = g.pix[i] - o.pix[i]
	}
	return out
}

// SIFT detects scale-space keypoints and computes their descriptors — a
// compact reimplementation of Lowe's pipeline sufficient for the paper's
// feature-matching attack (Fig. 20).
func SIFT(img *imgplane.Image, params SIFTParams) []Keypoint {
	params = params.defaults()
	const intervals = 3 // DoG layers per octave usable for extrema
	base := grayOf(img)

	var kps []Keypoint
	octaveImg := base
	for oct := 0; oct < params.Octaves; oct++ {
		if octaveImg.w < 16 || octaveImg.h < 16 {
			break
		}
		// Gaussian stack.
		k := math.Pow(2, 1.0/float64(intervals))
		sigma := 1.6
		stack := make([]*gray, intervals+3)
		for i := range stack {
			stack[i] = octaveImg.gaussBlur(sigma * math.Pow(k, float64(i)))
		}
		// DoG stack.
		dog := make([]*gray, len(stack)-1)
		for i := range dog {
			dog[i] = stack[i+1].sub(stack[i])
		}
		scaleMul := float64(int(1) << oct)
		for layer := 1; layer < len(dog)-1; layer++ {
			d := dog[layer]
			for y := 1; y < d.h-1; y++ {
				for x := 1; x < d.w-1; x++ {
					v := d.pix[y*d.w+x]
					if math.Abs(v) < params.ContrastThreshold {
						continue
					}
					if !isExtremum(dog, layer, x, y, v) {
						continue
					}
					if edgeLike(d, x, y, params.EdgeRatio) {
						continue
					}
					ori := dominantOrientation(stack[layer], x, y)
					kp := Keypoint{
						X:           float64(x) * scaleMul,
						Y:           float64(y) * scaleMul,
						Octave:      oct,
						Scale:       sigma * math.Pow(k, float64(layer)) * scaleMul,
						Orientation: ori,
					}
					kp.Descriptor = descriptor(stack[layer], x, y, ori)
					kps = append(kps, kp)
				}
			}
		}
		octaveImg = octaveImg.downsample()
	}
	if len(kps) > params.MaxKeypoints {
		sort.Slice(kps, func(i, j int) bool { return kps[i].Scale > kps[j].Scale })
		kps = kps[:params.MaxKeypoints]
	}
	return kps
}

func isExtremum(dog []*gray, layer, x, y int, v float64) bool {
	isMax, isMin := true, true
	for dl := -1; dl <= 1; dl++ {
		d := dog[layer+dl]
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dl == 0 && dx == 0 && dy == 0 {
					continue
				}
				n := d.at(x+dx, y+dy)
				if n >= v {
					isMax = false
				}
				if n <= v {
					isMin = false
				}
				if !isMax && !isMin {
					return false
				}
			}
		}
	}
	return isMax || isMin
}

func edgeLike(d *gray, x, y int, ratio float64) bool {
	dxx := d.at(x+1, y) + d.at(x-1, y) - 2*d.at(x, y)
	dyy := d.at(x, y+1) + d.at(x, y-1) - 2*d.at(x, y)
	dxy := (d.at(x+1, y+1) - d.at(x-1, y+1) - d.at(x+1, y-1) + d.at(x-1, y-1)) / 4
	tr := dxx + dyy
	det := dxx*dyy - dxy*dxy
	if det <= 0 {
		return true
	}
	return tr*tr/det > (ratio+1)*(ratio+1)/ratio
}

func dominantOrientation(g *gray, x, y int) float64 {
	var hist [36]float64
	for dy := -8; dy <= 8; dy++ {
		for dx := -8; dx <= 8; dx++ {
			gx := g.at(x+dx+1, y+dy) - g.at(x+dx-1, y+dy)
			gy := g.at(x+dx, y+dy+1) - g.at(x+dx, y+dy-1)
			mag := math.Hypot(gx, gy)
			ang := math.Atan2(gy, gx)
			bin := int((ang + math.Pi) / (2 * math.Pi) * 36)
			if bin >= 36 {
				bin = 35
			}
			w := math.Exp(-float64(dx*dx+dy*dy) / 128)
			hist[bin] += mag * w
		}
	}
	best := 0
	for i := range hist {
		if hist[i] > hist[best] {
			best = i
		}
	}
	return float64(best)/36*2*math.Pi - math.Pi
}

func descriptor(g *gray, x, y int, ori float64) [128]float32 {
	var desc [128]float64
	sin, cos := math.Sin(-ori), math.Cos(-ori)
	for dy := -8; dy < 8; dy++ {
		for dx := -8; dx < 8; dx++ {
			// Rotate sample offset into the keypoint frame.
			rx := cos*float64(dx) - sin*float64(dy)
			ry := sin*float64(dx) + cos*float64(dy)
			cellX := int((rx + 8) / 4)
			cellY := int((ry + 8) / 4)
			if cellX < 0 || cellX > 3 || cellY < 0 || cellY > 3 {
				continue
			}
			gx := g.at(x+dx+1, y+dy) - g.at(x+dx-1, y+dy)
			gy := g.at(x+dx, y+dy+1) - g.at(x+dx, y+dy-1)
			mag := math.Hypot(gx, gy)
			ang := math.Atan2(gy, gx) - ori
			for ang < 0 {
				ang += 2 * math.Pi
			}
			bin := int(ang / (2 * math.Pi) * 8)
			if bin >= 8 {
				bin = 7
			}
			desc[(cellY*4+cellX)*8+bin] += mag
		}
	}
	// Normalize, clip at 0.2, renormalize (Lowe's illumination robustness).
	normalize := func() {
		var norm float64
		for _, v := range desc {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm > 0 {
			for i := range desc {
				desc[i] /= norm
			}
		}
	}
	normalize()
	for i := range desc {
		if desc[i] > 0.2 {
			desc[i] = 0.2
		}
	}
	normalize()
	var out [128]float32
	for i, v := range desc {
		out[i] = float32(v)
	}
	return out
}

// Match is one descriptor correspondence between two keypoint sets.
type Match struct {
	A, B     int
	Distance float64
}

// MatchSIFT matches descriptors from a to b with Lowe's ratio test
// (nearest/second-nearest < ratio; 0 selects 0.8). The number of surviving
// matches between an original and its perturbed version is the Fig. 20
// leakage measure.
func MatchSIFT(a, b []Keypoint, ratio float64) []Match {
	if ratio == 0 {
		ratio = 0.8
	}
	var out []Match
	for i := range a {
		best, second := math.Inf(1), math.Inf(1)
		bestJ := -1
		for j := range b {
			d := descDist(&a[i].Descriptor, &b[j].Descriptor)
			if d < best {
				second = best
				best = d
				bestJ = j
			} else if d < second {
				second = d
			}
		}
		if bestJ >= 0 && second > 0 && best/second < ratio {
			out = append(out, Match{A: i, B: bestJ, Distance: best})
		}
	}
	return out
}

func descDist(a, b *[128]float32) float64 {
	var sum float64
	for i := range a {
		d := float64(a[i] - b[i])
		sum += d * d
	}
	return math.Sqrt(sum)
}
