package attack

import (
	"fmt"
	"math"

	"puppies/internal/core"
)

// BruteForceReport is the §VI-A accounting of the key search space at one
// privacy level.
type BruteForceReport struct {
	Level core.PrivacyLevel
	MR    int
	K     int
	// DCBits and ACBits are computed from Algorithm 3 (see the erratum note
	// on core.SecureBits); TotalBits is their sum.
	DCBits    int
	ACBits    int
	TotalBits int
	// PaperClaimBits is the figure the paper reports for this level
	// (705/794/1335); it differs from the computable value and is retained
	// for the EXPERIMENTS.md comparison.
	PaperClaimBits int
	// YearsAtRate is the expected exhaustive-search time at the given guess
	// rate (guesses/second), +Inf when the space exceeds float range.
	YearsAtRate float64
	// MeetsNIST reports whether the space exceeds the 256-bit NIST
	// recommendation the paper cites.
	MeetsNIST bool
}

var paperClaims = map[core.PrivacyLevel]int{
	core.LevelLow:    705,
	core.LevelMedium: 794,
	core.LevelHigh:   1335,
}

// BruteForce computes the report for one privacy level at the given guess
// rate (guesses per second; zero selects 1e12, a generous state-level rate).
func BruteForce(level core.PrivacyLevel, guessesPerSecond float64) (BruteForceReport, error) {
	if guessesPerSecond == 0 {
		guessesPerSecond = 1e12
	}
	if guessesPerSecond < 0 {
		return BruteForceReport{}, fmt.Errorf("attack: negative guess rate")
	}
	mR, k, err := core.LevelParams(level)
	if err != nil {
		return BruteForceReport{}, err
	}
	dc, ac, err := core.SecureBits(mR, k)
	if err != nil {
		return BruteForceReport{}, err
	}
	total := dc + ac
	years := math.Inf(1)
	if total < 1000 {
		years = math.Pow(2, float64(total)) / guessesPerSecond / (365.25 * 24 * 3600)
	}
	return BruteForceReport{
		Level:          level,
		MR:             mR,
		K:              k,
		DCBits:         dc,
		ACBits:         ac,
		TotalBits:      total,
		PaperClaimBits: paperClaims[level],
		YearsAtRate:    years,
		MeetsNIST:      total >= 256,
	}, nil
}

// BruteForceAll reports all three privacy levels.
func BruteForceAll(guessesPerSecond float64) ([]BruteForceReport, error) {
	levels := []core.PrivacyLevel{core.LevelLow, core.LevelMedium, core.LevelHigh}
	out := make([]BruteForceReport, 0, len(levels))
	for _, l := range levels {
		r, err := BruteForce(l, guessesPerSecond)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
