package attack

import (
	"math"
	"testing"

	"puppies/internal/core"
	"puppies/internal/dataset"
	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
	"puppies/internal/keys"
)

func checkerboard(w, h, cell int) *imgplane.Image {
	img, _ := imgplane.New(w, h, 3)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := float32(40)
			if (x/cell+y/cell)%2 == 0 {
				v = 220
			}
			i := y*w + x
			img.Planes[0].Pix[i] = v
			img.Planes[1].Pix[i] = 128
			img.Planes[2].Pix[i] = 128
		}
	}
	return img
}

func flat(w, h int) *imgplane.Image {
	img, _ := imgplane.New(w, h, 3)
	for i := range img.Planes[0].Pix {
		img.Planes[0].Pix[i] = 128
		img.Planes[1].Pix[i] = 128
		img.Planes[2].Pix[i] = 128
	}
	return img
}

func TestCannyFindsEdges(t *testing.T) {
	edges, err := Canny(checkerboard(64, 64, 8), CannyParams{})
	if err != nil {
		t.Fatal(err)
	}
	r := EdgeRatio(edges)
	if r < 0.05 {
		t.Errorf("checkerboard edge ratio %.3f too low", r)
	}
	flatEdges, err := Canny(flat(64, 64), CannyParams{})
	if err != nil {
		t.Fatal(err)
	}
	if fr := EdgeRatio(flatEdges); fr > 0.001 {
		t.Errorf("flat image edge ratio %.4f should be ~0", fr)
	}
}

func TestCannySmallImageErrors(t *testing.T) {
	if _, err := Canny(flat(64, 64), CannyParams{}); err != nil {
		t.Fatal(err)
	}
	tiny, _ := imgplane.New(2, 2, 1)
	if _, err := Canny(tiny, CannyParams{}); err == nil {
		t.Error("2x2 image accepted")
	}
}

func TestEdgeOverlap(t *testing.T) {
	ref := []bool{true, true, false, false}
	probe := []bool{true, false, true, false}
	ov, err := EdgeOverlap(ref, probe)
	if err != nil || ov != 0.5 {
		t.Errorf("overlap = %v, %v", ov, err)
	}
	if _, err := EdgeOverlap(ref, probe[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
	none, _ := EdgeOverlap([]bool{false}, []bool{false})
	if none != 0 {
		t.Errorf("empty-ref overlap = %v", none)
	}
}

func TestSIFTSelfMatch(t *testing.T) {
	g, _ := dataset.NewGenerator(dataset.PASCAL, 11)
	img := g.Item(0).Image
	kps := SIFT(img, SIFTParams{})
	if len(kps) < 20 {
		t.Fatalf("only %d keypoints on a textured image", len(kps))
	}
	matches := MatchSIFT(kps, kps, 0)
	// Self-matching with a ratio test: most keypoints should match (ratio
	// test kills points with a near-duplicate twin, so demand 50%).
	if len(matches) < len(kps)/2 {
		t.Errorf("self-match found %d/%d", len(matches), len(kps))
	}
	for _, m := range matches {
		if m.A != m.B {
			// Distinct keypoints can coincide; tolerate but distances must
			// then be near zero anyway.
			if m.Distance > 1e-6 {
				t.Errorf("self-match paired %d with %d at distance %v", m.A, m.B, m.Distance)
			}
		}
	}
}

func perturbWhole(t *testing.T, img *imgplane.Image, variant core.Variant) *imgplane.Image {
	t.Helper()
	cimg, err := jpegc.FromPlanar(img, jpegc.Options{Quality: 80})
	if err != nil {
		t.Fatal(err)
	}
	w8, h8 := (cimg.W/8)*8, (cimg.H/8)*8
	params, _ := core.NewParams(variant, core.LevelMedium)
	sch, err := core.NewScheme(params)
	if err != nil {
		t.Fatal(err)
	}
	pair := keys.NewPairDeterministic(99)
	if _, _, err := sch.EncryptImage(cimg, []core.RegionAssignment{
		{ROI: core.ROI{X: 0, Y: 0, W: w8, H: h8}, Pair: pair},
	}); err != nil {
		t.Fatal(err)
	}
	pix, err := cimg.ToPlanar()
	if err != nil {
		t.Fatal(err)
	}
	return pix.Quantize8()
}

func TestSIFTPerturbedDoesNotMatch(t *testing.T) {
	g, _ := dataset.NewGenerator(dataset.PASCAL, 12)
	img := g.Item(1).Image
	orig := SIFT(img, SIFTParams{})
	if len(orig) < 10 {
		t.Fatalf("only %d original keypoints", len(orig))
	}
	pert := SIFT(perturbWhole(t, img, core.VariantZ), SIFTParams{})
	matches := MatchSIFT(orig, pert, 0)
	// Fig. 20: the average match count between original and perturbed is
	// far below the original keypoint count (paper: < 1 match on ~1500).
	if len(matches) > len(orig)/20 {
		t.Errorf("perturbed image retained %d/%d SIFT matches", len(matches), len(orig))
	}
}

func TestCannyPerturbedLosesEdges(t *testing.T) {
	g, _ := dataset.NewGenerator(dataset.PASCAL, 13)
	img := g.Item(2).Image
	refEdges, err := Canny(img, CannyParams{})
	if err != nil {
		t.Fatal(err)
	}
	pertEdges, err := Canny(perturbWhole(t, img, core.VariantZ), CannyParams{})
	if err != nil {
		t.Fatal(err)
	}
	ov, err := EdgeOverlap(refEdges, pertEdges)
	if err != nil {
		t.Fatal(err)
	}
	if ov > 0.25 {
		t.Errorf("perturbed image retains %.0f%% of edge structure", ov*100)
	}
}

func galleryAndProbes(t *testing.T, identities, perID int) (*TrainingSet, []*dataset.Item) {
	t.Helper()
	prof := dataset.FERET
	prof.Identities = identities
	g, err := dataset.NewGenerator(prof, 21)
	if err != nil {
		t.Fatal(err)
	}
	ts := &TrainingSet{}
	for i := 0; i < identities*perID; i++ {
		item := g.Item(i)
		a := item.Annotations[0]
		if err := ts.Add(item.Image, a.X, a.Y, a.W, a.H, a.Identity); err != nil {
			t.Fatal(err)
		}
	}
	// Probes: the next batch (same identities, new variations).
	var probes []*dataset.Item
	for i := identities * perID; i < identities*(perID+1); i++ {
		probes = append(probes, g.Item(i))
	}
	return ts, probes
}

func TestEigenfacesRecognizeCleanProbes(t *testing.T) {
	const identities = 10
	ts, probes := galleryAndProbes(t, identities, 2)
	model, err := Train(ts, 15)
	if err != nil {
		t.Fatal(err)
	}
	rank1 := 0
	for _, p := range probes {
		a := p.Annotations[0]
		ranked, err := model.Recognize(p.Image, a.X, a.Y, a.W, a.H)
		if err != nil {
			t.Fatal(err)
		}
		if RankOf(ranked, a.Identity) == 1 {
			rank1++
		}
	}
	if rank1 < len(probes)*6/10 {
		t.Errorf("rank-1 recognition %d/%d on clean probes; model too weak", rank1, len(probes))
	}
}

func TestEigenfacesFailOnPerturbedProbes(t *testing.T) {
	const identities = 10
	ts, probes := galleryAndProbes(t, identities, 2)
	model, err := Train(ts, 15)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0 // rank <= 3 counts as a leak
	for _, p := range probes[:5] {
		a := p.Annotations[0]
		pert := perturbWhole(t, p.Image, core.VariantZ)
		ranked, err := model.Recognize(pert, a.X, a.Y, a.W, a.H)
		if err != nil {
			t.Fatal(err)
		}
		if r := RankOf(ranked, a.Identity); r > 0 && r <= 3 {
			hits++
		}
	}
	// With 10 identities, random chance of rank<=3 is 30%; allow up to 2/5.
	if hits > 2 {
		t.Errorf("perturbed probes recognized %d/5 times at rank<=3", hits)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(&TrainingSet{}, 5); err == nil {
		t.Error("empty training set accepted")
	}
	ts, _ := galleryAndProbes(t, 3, 1)
	if _, err := Train(ts, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestJacobiEigenKnownMatrix(t *testing.T) {
	// Symmetric matrix with known eigenvalues 3 and 1.
	m := [][]float64{{2, 1}, {1, 2}}
	evals, evecs, err := jacobiEigen(m, 50)
	if err != nil {
		t.Fatal(err)
	}
	got := []float64{evals[0], evals[1]}
	if got[0] < got[1] {
		got[0], got[1] = got[1], got[0]
	}
	if math.Abs(got[0]-3) > 1e-9 || math.Abs(got[1]-1) > 1e-9 {
		t.Errorf("eigenvalues %v, want [3 1]", got)
	}
	// Eigenvectors orthonormal.
	dot := evecs[0][0]*evecs[0][1] + evecs[1][0]*evecs[1][1]
	if math.Abs(dot) > 1e-9 {
		t.Errorf("eigenvectors not orthogonal: %v", dot)
	}
	if _, _, err := jacobiEigen([][]float64{{1, 2}}, 10); err == nil {
		t.Error("non-square matrix accepted")
	}
}

func correlationFixture(t *testing.T) (*imgplane.Image, *jpegc.Image, *core.PublicData) {
	t.Helper()
	g, _ := dataset.NewGenerator(dataset.PASCAL, 31)
	item := g.Item(0)
	cimg, err := jpegc.FromPlanar(item.Image, jpegc.Options{Quality: 80})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := cimg.ToPlanar()
	if err != nil {
		t.Fatal(err)
	}
	params, _ := core.NewParams(core.VariantC, core.LevelMedium)
	sch, _ := core.NewScheme(params)
	pair := keys.NewPairDeterministic(7)
	roi := core.ROI{X: 96, Y: 96, W: 128, H: 96}
	pd, _, err := sch.EncryptImage(cimg, []core.RegionAssignment{{ROI: roi, Pair: pair}})
	if err != nil {
		t.Fatal(err)
	}
	return orig, cimg, pd
}

// roiPSNR computes PSNR over the perturbed region only.
func roiPSNR(t *testing.T, a, b *imgplane.Image, roi core.ROI) float64 {
	t.Helper()
	var mse float64
	var n int
	for ci := range a.Planes {
		for y := roi.Y; y < roi.Y+roi.H; y++ {
			for x := roi.X; x < roi.X+roi.W; x++ {
				d := float64(a.Planes[ci].At(x, y) - b.Planes[ci].At(x, y))
				mse += d * d
				n++
			}
		}
	}
	mse /= float64(n)
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

func TestCorrelationAttacksFail(t *testing.T) {
	orig, perturbed, pd := correlationFixture(t)
	roi := pd.Regions[0].ROI
	perturbedPix, err := perturbed.ToPlanar()
	if err != nil {
		t.Fatal(err)
	}

	recovered1, err := InferMatrixAttack(perturbed, pd)
	if err != nil {
		t.Fatal(err)
	}
	recovered2, err := NeighborInterpolationAttack(perturbedPix, pd)
	if err != nil {
		t.Fatal(err)
	}
	recovered3, err := PCAAttack(perturbedPix, 6)
	if err != nil {
		t.Fatal(err)
	}
	for name, rec := range map[string]*imgplane.Image{
		"matrix-inference": recovered1,
		"neighbor-interp":  recovered2,
		"pca":              recovered3,
	} {
		psnr := roiPSNR(t, orig, rec, roi)
		if psnr > 28 {
			t.Errorf("%s attack recovered the ROI too well (PSNR %.1f dB)", name, psnr)
		}
	}
}

func TestInferMatrixAttackWholeImageErrors(t *testing.T) {
	g, _ := dataset.NewGenerator(dataset.PASCAL, 32)
	cimg, err := jpegc.FromPlanar(g.Item(0).Image, jpegc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	params, _ := core.NewParams(core.VariantC, core.LevelMedium)
	sch, _ := core.NewScheme(params)
	pair := keys.NewPairDeterministic(3)
	w8, h8 := (cimg.W/8)*8, (cimg.H/8)*8
	pd, _, err := sch.EncryptImage(cimg, []core.RegionAssignment{
		{ROI: core.ROI{X: 0, Y: 0, W: w8, H: h8}, Pair: pair},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InferMatrixAttack(cimg, pd); err == nil {
		t.Error("whole-image attack should report no reference blocks")
	}
}

func TestBruteForceReports(t *testing.T) {
	reports, err := BruteForceAll(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports", len(reports))
	}
	prev := 0
	for _, r := range reports {
		if r.DCBits != 704 {
			t.Errorf("%s: DC bits %d, want 704", r.Level, r.DCBits)
		}
		if r.TotalBits < prev {
			t.Errorf("%s: total bits %d not monotone", r.Level, r.TotalBits)
		}
		prev = r.TotalBits
		if !r.MeetsNIST {
			t.Errorf("%s: %d bits should exceed the 256-bit NIST bar", r.Level, r.TotalBits)
		}
		if r.PaperClaimBits == 0 {
			t.Errorf("%s: missing paper claim", r.Level)
		}
		if !math.IsInf(r.YearsAtRate, 1) && r.YearsAtRate < 1e50 {
			t.Errorf("%s: brute force in %.1e years is implausibly fast", r.Level, r.YearsAtRate)
		}
	}
	if _, err := BruteForce("bogus", 0); err == nil {
		t.Error("bogus level accepted")
	}
	if _, err := BruteForce(core.LevelLow, -5); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestPCAAttackValidation(t *testing.T) {
	img := flat(32, 32)
	if _, err := PCAAttack(img, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := PCAAttack(img, 4); err != nil {
		t.Errorf("flat image: %v", err)
	}
}
