package attack

import (
	"fmt"
	"math"

	"puppies/internal/core"
	"puppies/internal/dct"
	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
	"puppies/internal/keys"
)

// The three signal-correlation reconstruction attacks of §VI-B.5. Each
// takes the perturbed coefficient image and the (public) region parameters
// and returns its best-effort pixel reconstruction; the experiments score
// it against the original with PSNR/SSIM.

// InferMatrixAttack implements attack (1): infer the private matrix from
// image-signal continuity. The attacker takes the upper-left perturbed
// coefficient block of the ROI (which "contains the full perturbation
// information"), subtracts the average of all unperturbed blocks as its
// guess of the underlying content, treats the difference as the inferred
// private matrix, and runs the standard decryption with it.
func InferMatrixAttack(perturbed *jpegc.Image, pd *core.PublicData) (*imgplane.Image, error) {
	if len(pd.Regions) == 0 {
		return nil, fmt.Errorf("attack: no regions to attack")
	}
	work := perturbed.Clone()
	for ri := range pd.Regions {
		rp := &pd.Regions[ri]
		bx0, by0, bw, bh := rp.ROI.Blocks()

		// Average unperturbed block (per channel 0; the attack works on
		// luminance, chroma follows the same inferred matrix).
		var avg [dct.BlockLen]float64
		count := 0
		comp := &work.Comps[0]
		for by := 0; by < comp.BlocksH; by++ {
			for bx := 0; bx < comp.BlocksW; bx++ {
				if bx >= bx0 && bx < bx0+bw && by >= by0 && by < by0+bh {
					continue
				}
				b := comp.Block(bx, by)
				for i := 0; i < dct.BlockLen; i++ {
					avg[i] += float64(b[i])
				}
				count++
			}
		}
		if count == 0 {
			return nil, fmt.Errorf("attack: region covers whole image; no unperturbed blocks to average")
		}
		corner := comp.Block(bx0, by0)
		var inferred keys.Pair
		inferred.ID = rp.KeyID
		for i := 0; i < dct.BlockLen; i++ {
			diff := int32(math.Round(float64(corner[i]) - avg[i]/float64(count)))
			v := ((diff % keys.EntryRange) + keys.EntryRange) % keys.EntryRange
			// The same inferred value serves as both DC and AC guess: the
			// attacker cannot separate the two matrices.
			zz := dct.UnZigZag[i]
			inferred.DC[i%keys.MatrixLen] = v
			inferred.AC[zz] = v
		}
		if err := core.DecryptRegion(work, rp, &inferred); err != nil {
			return nil, err
		}
	}
	return work.ToPlanar()
}

// NeighborInterpolationAttack implements attack (2): recover perturbed
// pixels from spatial correlation with unperturbed neighbours. Starting at
// the ROI boundary and moving inward in a spiral, every encrypted pixel is
// replaced by the average of its nearest non-encrypted neighbours
// (weighted linear combination of neighbours, after Garnett et al.).
func NeighborInterpolationAttack(perturbedPix *imgplane.Image, pd *core.PublicData) (*imgplane.Image, error) {
	if err := perturbedPix.Validate(); err != nil {
		return nil, err
	}
	out := perturbedPix.Clone()
	w, h := out.W(), out.H()
	encrypted := make([]bool, w*h)
	for _, rp := range pd.Regions {
		for y := rp.ROI.Y; y < rp.ROI.Y+rp.ROI.H; y++ {
			for x := rp.ROI.X; x < rp.ROI.X+rp.ROI.W; x++ {
				encrypted[y*w+x] = true
			}
		}
	}
	// Iterative inpainting: outermost encrypted pixels first.
	for {
		type fill struct {
			idx int
			val [3]float32
		}
		var fills []fill
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if !encrypted[y*w+x] {
					continue
				}
				var sum [3]float32
				n := 0
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						nx, ny := x+dx, y+dy
						if nx < 0 || ny < 0 || nx >= w || ny >= h || encrypted[ny*w+nx] {
							continue
						}
						for ci := range out.Planes {
							sum[ci] += out.Planes[ci].Pix[ny*w+nx]
						}
						n++
					}
				}
				if n > 0 {
					var val [3]float32
					for ci := range out.Planes {
						val[ci] = sum[ci] / float32(n)
					}
					fills = append(fills, fill{idx: y*w + x, val: val})
				}
			}
		}
		if len(fills) == 0 {
			break
		}
		for _, f := range fills {
			for ci := range out.Planes {
				out.Planes[ci].Pix[f.idx] = f.val[ci]
			}
			encrypted[f.idx] = false
		}
	}
	return out, nil
}

// PCAAttack implements attack (3): project the perturbed image's 8x8 pixel
// blocks onto their top-k principal components and reconstruct, hoping the
// dominant components capture original structure rather than perturbation
// noise.
func PCAAttack(perturbedPix *imgplane.Image, k int) (*imgplane.Image, error) {
	if err := perturbedPix.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("attack: k must be positive")
	}
	out := perturbedPix.Clone()
	const bs = 8
	const dim = bs * bs
	for _, plane := range out.Planes {
		bw, bh := plane.W/bs, plane.H/bs
		m := bw * bh
		if m < 2 {
			continue
		}
		// Collect block vectors.
		data := make([][]float64, m)
		mean := make([]float64, dim)
		for by := 0; by < bh; by++ {
			for bx := 0; bx < bw; bx++ {
				vec := make([]float64, dim)
				for y := 0; y < bs; y++ {
					for x := 0; x < bs; x++ {
						vec[y*bs+x] = float64(plane.Pix[(by*bs+y)*plane.W+bx*bs+x])
					}
				}
				data[by*bw+bx] = vec
				for i, v := range vec {
					mean[i] += v
				}
			}
		}
		for i := range mean {
			mean[i] /= float64(m)
		}
		// Covariance (dim x dim = 64x64) and its eigenvectors.
		cov := make([][]float64, dim)
		for i := range cov {
			cov[i] = make([]float64, dim)
		}
		for _, vec := range data {
			for i := 0; i < dim; i++ {
				di := vec[i] - mean[i]
				for j := i; j < dim; j++ {
					cov[i][j] += di * (vec[j] - mean[j])
				}
			}
		}
		for i := 0; i < dim; i++ {
			for j := i; j < dim; j++ {
				cov[i][j] /= float64(m - 1)
				cov[j][i] = cov[i][j]
			}
		}
		evals, evecs, err := jacobiEigen(cov, 100)
		if err != nil {
			return nil, err
		}
		// Top-k component indices.
		top := topKIndices(evals, k)
		// Project and reconstruct every block.
		for bi, vec := range data {
			recon := append([]float64(nil), mean...)
			for _, c := range top {
				var dot float64
				for i := 0; i < dim; i++ {
					dot += (vec[i] - mean[i]) * evecs[i][c]
				}
				for i := 0; i < dim; i++ {
					recon[i] += dot * evecs[i][c]
				}
			}
			bx, by := bi%bw, bi/bw
			for y := 0; y < bs; y++ {
				for x := 0; x < bs; x++ {
					plane.Pix[(by*bs+y)*plane.W+bx*bs+x] = float32(recon[y*bs+x])
				}
			}
		}
	}
	return out, nil
}

func topKIndices(vals []float64, k int) []int {
	if k > len(vals) {
		k = len(vals)
	}
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort is fine for 64 values.
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if vals[idx[j]] > vals[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}
