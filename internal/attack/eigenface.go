package attack

import (
	"fmt"
	"math"
	"sort"

	"puppies/internal/imgplane"
	"puppies/internal/transform"
)

// FaceSize is the side length faces are normalized to before PCA.
const FaceSize = 32

// faceDim is the flattened face vector length.
const faceDim = FaceSize * FaceSize

// Eigenfaces is a PCA face recognizer (Turk & Pentland), the paper's
// §VI-B.4 face recognition attack.
type Eigenfaces struct {
	mean       []float64
	components [][]float64 // k x faceDim, orthonormal
	gallery    [][]float64 // projected gallery faces (k-dim)
	labels     []int
}

// normalizeFace crops the rectangle from the image's luminance plane,
// resizes it to FaceSize x FaceSize and zero-means its intensity.
func normalizeFace(img *imgplane.Image, x, y, w, h int) ([]float64, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("attack: empty face rectangle")
	}
	crop, err := transform.CropPlane(img.Planes[0], clampRange(x, 0, img.W()-1), clampRange(y, 0, img.H()-1),
		clampRange(w, 1, img.W()-clampRange(x, 0, img.W()-1)), clampRange(h, 1, img.H()-clampRange(y, 0, img.H()-1)))
	if err != nil {
		return nil, err
	}
	resized, err := transform.ScaleBilinear(crop, float64(FaceSize)/float64(crop.W), float64(FaceSize)/float64(crop.H))
	if err != nil {
		return nil, err
	}
	vec := make([]float64, faceDim)
	var mean float64
	for i := 0; i < faceDim && i < len(resized.Pix); i++ {
		vec[i] = float64(resized.Pix[i])
		mean += vec[i]
	}
	mean /= faceDim
	for i := range vec {
		vec[i] -= mean
	}
	return vec, nil
}

func clampRange(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// TrainEigenfaces fits PCA on the gallery faces (one vector per face,
// produced by normalizeFace via AddFace helpers) keeping k components.
type TrainingSet struct {
	faces  [][]float64
	labels []int
}

// Add registers one gallery face crop with its identity label.
func (ts *TrainingSet) Add(img *imgplane.Image, x, y, w, h, label int) error {
	vec, err := normalizeFace(img, x, y, w, h)
	if err != nil {
		return err
	}
	ts.faces = append(ts.faces, vec)
	ts.labels = append(ts.labels, label)
	return nil
}

// Len returns the number of gallery faces.
func (ts *TrainingSet) Len() int { return len(ts.faces) }

// Train fits the eigenface model with k principal components (capped at the
// gallery size).
func Train(ts *TrainingSet, k int) (*Eigenfaces, error) {
	m := len(ts.faces)
	if m < 2 {
		return nil, fmt.Errorf("attack: need at least 2 gallery faces, have %d", m)
	}
	if k < 1 {
		return nil, fmt.Errorf("attack: k must be positive")
	}
	if k > m {
		k = m
	}
	// Mean face.
	mean := make([]float64, faceDim)
	for _, f := range ts.faces {
		for i, v := range f {
			mean[i] += v
		}
	}
	for i := range mean {
		mean[i] /= float64(m)
	}
	// Centered data A (m x d), Gram matrix G = A A^T (m x m).
	a := make([][]float64, m)
	for r, f := range ts.faces {
		a[r] = make([]float64, faceDim)
		for i, v := range f {
			a[r][i] = v - mean[i]
		}
	}
	g := make([][]float64, m)
	for i := 0; i < m; i++ {
		g[i] = make([]float64, m)
		for j := 0; j <= i; j++ {
			var dot float64
			for t := 0; t < faceDim; t++ {
				dot += a[i][t] * a[j][t]
			}
			g[i][j] = dot
			g[j][i] = dot
		}
	}
	evals, evecs, err := jacobiEigen(g, 200)
	if err != nil {
		return nil, err
	}
	// Sort by eigenvalue descending.
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return evals[order[x]] > evals[order[y]] })

	ef := &Eigenfaces{mean: mean, labels: append([]int(nil), ts.labels...)}
	for c := 0; c < k; c++ {
		idx := order[c]
		if evals[idx] <= 1e-9 {
			break
		}
		comp := make([]float64, faceDim)
		for r := 0; r < m; r++ {
			w := evecs[r][idx]
			for t := 0; t < faceDim; t++ {
				comp[t] += w * a[r][t]
			}
		}
		var norm float64
		for _, v := range comp {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			continue
		}
		for t := range comp {
			comp[t] /= norm
		}
		ef.components = append(ef.components, comp)
	}
	if len(ef.components) == 0 {
		return nil, fmt.Errorf("attack: PCA produced no usable components")
	}
	// Project the gallery.
	ef.gallery = make([][]float64, m)
	for r := 0; r < m; r++ {
		ef.gallery[r] = ef.project(ts.faces[r])
	}
	return ef, nil
}

func (ef *Eigenfaces) project(face []float64) []float64 {
	centered := make([]float64, faceDim)
	for i := range centered {
		centered[i] = face[i] - ef.mean[i]
	}
	out := make([]float64, len(ef.components))
	for c, comp := range ef.components {
		var dot float64
		for i := range comp {
			dot += comp[i] * centered[i]
		}
		out[c] = dot
	}
	return out
}

// RankedLabel is one recognition candidate.
type RankedLabel struct {
	Label    int
	Distance float64
}

// Recognize projects the probe face crop and returns gallery identities
// ranked by distance (deduplicated by identity, nearest instance wins).
func (ef *Eigenfaces) Recognize(img *imgplane.Image, x, y, w, h int) ([]RankedLabel, error) {
	vec, err := normalizeFace(img, x, y, w, h)
	if err != nil {
		return nil, err
	}
	probe := ef.project(vec)
	best := map[int]float64{}
	for i, gal := range ef.gallery {
		var d float64
		for c := range probe {
			diff := probe[c] - gal[c]
			d += diff * diff
		}
		if cur, ok := best[ef.labels[i]]; !ok || d < cur {
			best[ef.labels[i]] = d
		}
	}
	out := make([]RankedLabel, 0, len(best))
	for label, d := range best {
		out = append(out, RankedLabel{Label: label, Distance: d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Distance < out[j].Distance })
	return out, nil
}

// RankOf returns the 1-based rank of the true label in the ranked list, or
// 0 if absent.
func RankOf(ranked []RankedLabel, label int) int {
	for i, r := range ranked {
		if r.Label == label {
			return i + 1
		}
	}
	return 0
}

// jacobiEigen computes all eigenvalues/vectors of a symmetric matrix via
// cyclic Jacobi rotations. evecs columns are eigenvectors: evecs[r][c] is
// component r of eigenvector c.
func jacobiEigen(a [][]float64, maxSweeps int) ([]float64, [][]float64, error) {
	n := len(a)
	if n == 0 {
		return nil, nil, fmt.Errorf("attack: empty matrix")
	}
	// Work on a copy.
	m := make([][]float64, n)
	v := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, nil, fmt.Errorf("attack: matrix not square")
		}
		m[i] = append([]float64(nil), a[i]...)
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-18 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(m[p][q]) < 1e-15 {
					continue
				}
				theta := (m[q][q] - m[p][p]) / (2 * m[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				for i := 0; i < n; i++ {
					mip, miq := m[i][p], m[i][q]
					m[i][p] = c*mip - s*miq
					m[i][q] = s*mip + c*miq
				}
				for i := 0; i < n; i++ {
					mpi, mqi := m[p][i], m[q][i]
					m[p][i] = c*mpi - s*mqi
					m[q][i] = s*mpi + c*mqi
				}
				for i := 0; i < n; i++ {
					vip, viq := v[i][p], v[i][q]
					v[i][p] = c*vip - s*viq
					v[i][q] = s*vip + c*viq
				}
			}
		}
	}
	evals := make([]float64, n)
	for i := 0; i < n; i++ {
		evals[i] = m[i][i]
	}
	return evals, v, nil
}
