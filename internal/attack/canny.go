// Package attack implements the privacy attacks of the paper's §VI
// evaluation: brute-force accounting, SIFT feature matching, Canny edge
// detection, PCA eigenface recognition, and the three signal-correlation
// reconstruction attacks. The experiments measure how little each attack
// extracts from PuPPIeS-perturbed images (and from P3 public parts).
package attack

import (
	"fmt"
	"math"

	"puppies/internal/imgplane"
)

// CannyParams configure the edge detector.
type CannyParams struct {
	// LowThreshold and HighThreshold are the hysteresis thresholds on
	// gradient magnitude. Zero values select 40/90.
	LowThreshold  float64
	HighThreshold float64
}

func (p CannyParams) thresholds() (lo, hi float64) {
	lo, hi = p.LowThreshold, p.HighThreshold
	if lo == 0 {
		lo = 40
	}
	if hi == 0 {
		hi = 90
	}
	return lo, hi
}

// Canny runs the classical Canny edge detector (Gaussian smoothing, Sobel
// gradients, non-maximum suppression, hysteresis) on the luminance plane
// and returns the edge mask (row-major, w*h).
func Canny(img *imgplane.Image, params CannyParams) ([]bool, error) {
	if err := img.Validate(); err != nil {
		return nil, err
	}
	y := img.Planes[0]
	w, h := y.W, y.H
	if w < 3 || h < 3 {
		return nil, fmt.Errorf("attack: image %dx%d too small for canny", w, h)
	}
	lo, hi := params.thresholds()

	// 5x5 Gaussian smoothing.
	smooth := make([]float64, w*h)
	kernel := [5]float64{1, 4, 6, 4, 1}
	for yy := 0; yy < h; yy++ {
		for xx := 0; xx < w; xx++ {
			var sum, norm float64
			for ky := -2; ky <= 2; ky++ {
				for kx := -2; kx <= 2; kx++ {
					kw := kernel[ky+2] * kernel[kx+2]
					sum += kw * float64(y.At(xx+kx, yy+ky))
					norm += kw
				}
			}
			smooth[yy*w+xx] = sum / norm
		}
	}
	at := func(x, yy int) float64 {
		if x < 0 {
			x = 0
		} else if x >= w {
			x = w - 1
		}
		if yy < 0 {
			yy = 0
		} else if yy >= h {
			yy = h - 1
		}
		return smooth[yy*w+x]
	}

	// Sobel gradients.
	mag := make([]float64, w*h)
	dir := make([]uint8, w*h) // quantized to 4 directions
	for yy := 0; yy < h; yy++ {
		for xx := 0; xx < w; xx++ {
			gx := -at(xx-1, yy-1) - 2*at(xx-1, yy) - at(xx-1, yy+1) +
				at(xx+1, yy-1) + 2*at(xx+1, yy) + at(xx+1, yy+1)
			gy := -at(xx-1, yy-1) - 2*at(xx, yy-1) - at(xx+1, yy-1) +
				at(xx-1, yy+1) + 2*at(xx, yy+1) + at(xx+1, yy+1)
			m := math.Hypot(gx, gy)
			mag[yy*w+xx] = m
			ang := math.Atan2(gy, gx) * 180 / math.Pi
			if ang < 0 {
				ang += 180
			}
			switch {
			case ang < 22.5 || ang >= 157.5:
				dir[yy*w+xx] = 0 // horizontal gradient -> vertical edge
			case ang < 67.5:
				dir[yy*w+xx] = 1
			case ang < 112.5:
				dir[yy*w+xx] = 2
			default:
				dir[yy*w+xx] = 3
			}
		}
	}

	// Non-maximum suppression.
	nms := make([]float64, w*h)
	for yy := 1; yy < h-1; yy++ {
		for xx := 1; xx < w-1; xx++ {
			i := yy*w + xx
			var a, b float64
			switch dir[i] {
			case 0:
				a, b = mag[i-1], mag[i+1]
			case 1:
				a, b = mag[(yy-1)*w+xx+1], mag[(yy+1)*w+xx-1]
			case 2:
				a, b = mag[(yy-1)*w+xx], mag[(yy+1)*w+xx]
			default:
				a, b = mag[(yy-1)*w+xx-1], mag[(yy+1)*w+xx+1]
			}
			if mag[i] >= a && mag[i] >= b {
				nms[i] = mag[i]
			}
		}
	}

	// Hysteresis: strong edges seed, weak edges join if connected.
	edges := make([]bool, w*h)
	var stack []int
	for i, m := range nms {
		if m >= hi && !edges[i] {
			edges[i] = true
			stack = append(stack, i)
			for len(stack) > 0 {
				idx := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				x0, y0 := idx%w, idx/w
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						nx, ny := x0+dx, y0+dy
						if nx < 0 || ny < 0 || nx >= w || ny >= h {
							continue
						}
						ni := ny*w + nx
						if !edges[ni] && nms[ni] >= lo {
							edges[ni] = true
							stack = append(stack, ni)
						}
					}
				}
			}
		}
	}
	return edges, nil
}

// EdgeRatio returns the fraction of pixels marked as edges.
func EdgeRatio(edges []bool) float64 {
	if len(edges) == 0 {
		return 0
	}
	n := 0
	for _, e := range edges {
		if e {
			n++
		}
	}
	return float64(n) / float64(len(edges))
}

// EdgeOverlap returns the fraction of edge pixels in ref that are also edge
// pixels in probe — how much true edge structure survives in a perturbed
// image (Fig. 21's measure of leaked structure).
func EdgeOverlap(ref, probe []bool) (float64, error) {
	if len(ref) != len(probe) {
		return 0, fmt.Errorf("attack: edge masks of different length (%d vs %d)", len(ref), len(probe))
	}
	refCount, both := 0, 0
	for i := range ref {
		if ref[i] {
			refCount++
			if probe[i] {
				both++
			}
		}
	}
	if refCount == 0 {
		return 0, nil
	}
	return float64(both) / float64(refCount), nil
}
