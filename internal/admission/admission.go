// Package admission implements bounded-inflight admission control for the
// serving path: a weighted FIFO semaphore with a short bounded queue and a
// per-request wait deadline. Work beyond the inflight capacity queues
// briefly; work that cannot be admitted in time is shed explicitly (the
// caller answers HTTP 429 with a Retry-After hint) instead of piling onto an
// unbounded queue until every request times out — under overload a server
// must degrade by rejecting crisply, not by collapsing.
//
// The controller is deliberately tiny and dependency-free so both the PSP
// server (internal/psp) and the cluster gateway (internal/cluster) front
// their handlers with the same primitive.
package admission

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Outcome classifies one Acquire call.
type Outcome int

const (
	// Admitted means capacity was granted; the caller must call the release
	// function when the work finishes.
	Admitted Outcome = iota
	// ShedQueueFull means the wait queue was already at capacity — the
	// server is far past saturation and the request was rejected instantly.
	ShedQueueFull
	// ShedTimeout means the request queued but capacity did not free up
	// within the wait bound (or the caller's context expired first).
	ShedTimeout
	// ShedDraining means the server is draining: requests that would have
	// had to queue are rejected immediately so shutdown never grows a
	// backlog, while requests that fit in free capacity still run.
	ShedDraining
)

func (o Outcome) String() string {
	switch o {
	case Admitted:
		return "admitted"
	case ShedQueueFull:
		return "shed-queue-full"
	case ShedTimeout:
		return "shed-timeout"
	case ShedDraining:
		return "shed-draining"
	}
	return "unknown"
}

// Config parameterizes a Controller. Zero fields take the defaults.
type Config struct {
	// Capacity is the weighted inflight budget. Zero means
	// DefaultCapacityPerProc per GOMAXPROCS (set by the caller); the
	// controller itself treats <=0 as 1.
	Capacity int
	// MaxWait bounds how long a request may queue for capacity before it is
	// shed. Zero means DefaultMaxWait.
	MaxWait time.Duration
	// MaxQueue bounds how many requests may wait at once; arrivals beyond
	// it are shed instantly. Zero means DefaultQueueFactor*Capacity.
	MaxQueue int
	// RetryAfter is the base Retry-After hint attached to sheds; the
	// effective hint scales with queue occupancy. Zero means
	// DefaultRetryAfter.
	RetryAfter time.Duration
}

// Controller defaults.
const (
	DefaultMaxWait     = 500 * time.Millisecond
	DefaultQueueFactor = 8
	DefaultRetryAfter  = 250 * time.Millisecond
)

// Stats is a point-in-time snapshot of the controller, shaped for statz
// JSON bodies.
type Stats struct {
	Capacity      int    `json:"capacity"`
	Inflight      int    `json:"inflight"`
	Queued        int    `json:"queued"`
	Admitted      uint64 `json:"admitted"`
	ShedQueueFull uint64 `json:"shedQueueFull"`
	ShedTimeout   uint64 `json:"shedTimeout"`
	ShedDraining  uint64 `json:"shedDraining"`
}

// Sheds is the total number of rejected acquisitions in the snapshot.
func (s Stats) Sheds() uint64 { return s.ShedQueueFull + s.ShedTimeout + s.ShedDraining }

type waiter struct {
	weight  int
	ready   chan struct{}
	granted bool
}

// Controller is the weighted FIFO admission semaphore. A nil *Controller
// admits everything (admission disabled).
type Controller struct {
	capacity   int
	maxWait    time.Duration
	maxQueue   int
	retryAfter time.Duration

	mu       sync.Mutex
	tokens   int
	waiters  *list.List
	draining bool

	admitted      atomic.Uint64
	shedQueueFull atomic.Uint64
	shedTimeout   atomic.Uint64
	shedDraining  atomic.Uint64
}

// New builds a Controller from cfg.
func New(cfg Config) *Controller {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = DefaultMaxWait
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = DefaultQueueFactor * cfg.Capacity
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	return &Controller{
		capacity:   cfg.Capacity,
		maxWait:    cfg.MaxWait,
		maxQueue:   cfg.MaxQueue,
		retryAfter: cfg.RetryAfter,
		tokens:     cfg.Capacity,
		waiters:    list.New(),
	}
}

// SetDraining flips drain mode: while draining, acquisitions that would have
// to queue are shed immediately (in-flight work and fast-path admissions are
// unaffected), so a shutting-down server never accumulates a backlog it is
// about to abandon.
func (c *Controller) SetDraining(v bool) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.draining = v
	c.mu.Unlock()
}

// Acquire requests weight units of capacity, queueing up to the wait bound
// (or ctx's deadline, whichever is sooner). On admission it returns a
// release function and Admitted; on shed it returns a nil release and the
// shed classification. A nil Controller admits everything with a no-op
// release. Weights above capacity are clamped so an expensive request is
// admittable at all.
func (c *Controller) Acquire(ctx context.Context, weight int) (release func(), outcome Outcome) {
	if c == nil {
		return func() {}, Admitted
	}
	if weight <= 0 {
		weight = 1
	}
	if weight > c.capacity {
		weight = c.capacity
	}

	c.mu.Lock()
	// Fast path: capacity free and nobody queued ahead (FIFO — a lighter
	// request must not starve a heavier one already waiting).
	if c.waiters.Len() == 0 && c.tokens >= weight {
		c.tokens -= weight
		c.mu.Unlock()
		c.admitted.Add(1)
		return c.releaseFunc(weight), Admitted
	}
	if c.draining {
		c.mu.Unlock()
		c.shedDraining.Add(1)
		return nil, ShedDraining
	}
	if c.waiters.Len() >= c.maxQueue {
		c.mu.Unlock()
		c.shedQueueFull.Add(1)
		return nil, ShedQueueFull
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	elem := c.waiters.PushBack(w)
	c.mu.Unlock()

	timer := time.NewTimer(c.maxWait)
	defer timer.Stop()
	select {
	case <-w.ready:
		c.admitted.Add(1)
		return c.releaseFunc(weight), Admitted
	case <-timer.C:
	case <-ctx.Done():
	}

	// Deadline (or caller abandonment). The grant may have raced us: take
	// it if so, otherwise leave the queue.
	c.mu.Lock()
	if w.granted {
		c.mu.Unlock()
		c.admitted.Add(1)
		return c.releaseFunc(weight), Admitted
	}
	c.waiters.Remove(elem)
	// Removing a heavy head may unblock lighter waiters behind it.
	c.grantLocked()
	c.mu.Unlock()
	c.shedTimeout.Add(1)
	return nil, ShedTimeout
}

func (c *Controller) releaseFunc(weight int) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			c.tokens += weight
			if c.tokens > c.capacity {
				c.tokens = c.capacity
			}
			c.grantLocked()
			c.mu.Unlock()
		})
	}
}

// grantLocked hands tokens to queued waiters in FIFO order while they fit.
func (c *Controller) grantLocked() {
	for {
		front := c.waiters.Front()
		if front == nil {
			return
		}
		w := front.Value.(*waiter)
		if c.tokens < w.weight {
			return
		}
		c.tokens -= w.weight
		w.granted = true
		close(w.ready)
		c.waiters.Remove(front)
	}
}

// RetryAfterHint is the Retry-After duration a shed response should carry:
// the base hint scaled up with queue occupancy, so clients back off harder
// the deeper the overload.
func (c *Controller) RetryAfterHint() time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	queued := c.waiters.Len()
	c.mu.Unlock()
	d := c.retryAfter
	if c.maxQueue > 0 && queued > 0 {
		d += time.Duration(float64(c.retryAfter) * 3 * float64(queued) / float64(c.maxQueue))
	}
	return d
}

// Stats snapshots the controller counters.
func (c *Controller) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	inflight := c.capacity - c.tokens
	queued := c.waiters.Len()
	c.mu.Unlock()
	return Stats{
		Capacity:      c.capacity,
		Inflight:      inflight,
		Queued:        queued,
		Admitted:      c.admitted.Load(),
		ShedQueueFull: c.shedQueueFull.Load(),
		ShedTimeout:   c.shedTimeout.Load(),
		ShedDraining:  c.shedDraining.Load(),
	}
}
