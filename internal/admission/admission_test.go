package admission

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	rel, out := c.Acquire(context.Background(), 5)
	if out != Admitted || rel == nil {
		t.Fatalf("nil controller: outcome %v, release nil=%v", out, rel == nil)
	}
	rel()
	c.SetDraining(true) // must not panic
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
	if c.RetryAfterHint() != 0 {
		t.Fatal("nil hint should be zero")
	}
}

func TestFastPathAndRelease(t *testing.T) {
	c := New(Config{Capacity: 2, MaxWait: time.Second})
	rel1, out := c.Acquire(context.Background(), 1)
	if out != Admitted {
		t.Fatalf("outcome %v", out)
	}
	rel2, out := c.Acquire(context.Background(), 1)
	if out != Admitted {
		t.Fatalf("outcome %v", out)
	}
	st := c.Stats()
	if st.Inflight != 2 || st.Admitted != 2 {
		t.Fatalf("stats %+v", st)
	}
	rel1()
	rel1() // idempotent: double release must not over-credit
	rel2()
	if st := c.Stats(); st.Inflight != 0 {
		t.Fatalf("after release: %+v", st)
	}
}

func TestWeightClampedToCapacity(t *testing.T) {
	c := New(Config{Capacity: 2})
	rel, out := c.Acquire(context.Background(), 100)
	if out != Admitted {
		t.Fatalf("over-capacity weight must clamp and admit, got %v", out)
	}
	rel()
	if st := c.Stats(); st.Inflight != 0 {
		t.Fatalf("release after clamp leaked: %+v", st)
	}
}

func TestQueueThenGrantFIFO(t *testing.T) {
	c := New(Config{Capacity: 1, MaxWait: 5 * time.Second})
	rel, out := c.Acquire(context.Background(), 1)
	if out != Admitted {
		t.Fatal(out)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Stagger arrivals so FIFO order is well defined.
			time.Sleep(time.Duration(i+1) * 30 * time.Millisecond)
			r, out := c.Acquire(context.Background(), 1)
			if out != Admitted {
				t.Errorf("waiter %d: %v", i, out)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			r()
		}(i)
	}
	time.Sleep(150 * time.Millisecond)
	if st := c.Stats(); st.Queued != 3 {
		t.Fatalf("queued = %d, want 3", st.Queued)
	}
	rel()
	wg.Wait()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("grant order %v, want [0 1 2]", order)
	}
}

func TestShedTimeout(t *testing.T) {
	c := New(Config{Capacity: 1, MaxWait: 30 * time.Millisecond})
	rel, _ := c.Acquire(context.Background(), 1)
	defer rel()
	start := time.Now()
	r, out := c.Acquire(context.Background(), 1)
	if out != ShedTimeout || r != nil {
		t.Fatalf("outcome %v", out)
	}
	if d := time.Since(start); d < 25*time.Millisecond || d > 2*time.Second {
		t.Fatalf("shed after %v, want ~30ms", d)
	}
	if st := c.Stats(); st.ShedTimeout != 1 || st.Queued != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestShedQueueFull(t *testing.T) {
	c := New(Config{Capacity: 1, MaxQueue: 1, MaxWait: time.Second})
	rel, _ := c.Acquire(context.Background(), 1)
	defer rel()
	go c.Acquire(context.Background(), 1) // fills the queue
	deadline := time.Now().Add(time.Second)
	for {
		if c.Stats().Queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	r, out := c.Acquire(context.Background(), 1)
	if out != ShedQueueFull || r != nil {
		t.Fatalf("outcome %v", out)
	}
	if st := c.Stats(); st.ShedQueueFull != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestShedDraining(t *testing.T) {
	c := New(Config{Capacity: 1, MaxWait: time.Second})
	rel, _ := c.Acquire(context.Background(), 1)
	c.SetDraining(true)
	r, out := c.Acquire(context.Background(), 1)
	if out != ShedDraining || r != nil {
		t.Fatalf("outcome %v", out)
	}
	// Free capacity still admits while draining: in-flight work finishes
	// and cheap requests keep being served.
	rel()
	r, out = c.Acquire(context.Background(), 1)
	if out != Admitted {
		t.Fatalf("fast path while draining: %v", out)
	}
	r()
	c.SetDraining(false)
	if st := c.Stats(); st.ShedDraining != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestContextCancelShedsEarly(t *testing.T) {
	c := New(Config{Capacity: 1, MaxWait: 10 * time.Second})
	rel, _ := c.Acquire(context.Background(), 1)
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, out := c.Acquire(ctx, 1)
	if out != ShedTimeout {
		t.Fatalf("outcome %v", out)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancel did not cut the wait")
	}
}

func TestHeavyHeadRemovalUnblocksLighter(t *testing.T) {
	c := New(Config{Capacity: 2, MaxWait: 80 * time.Millisecond})
	relA, _ := c.Acquire(context.Background(), 1) // tokens: 1 left
	// Heavy waiter (weight 2) queues at the head.
	headDone := make(chan Outcome, 1)
	go func() {
		_, out := c.Acquire(context.Background(), 2)
		headDone <- out
	}()
	deadline := time.Now().Add(time.Second)
	for c.Stats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("head never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Light waiter behind it: FIFO blocks it even though a token is free.
	lightDone := make(chan Outcome, 1)
	go func() {
		r, out := c.Acquire(context.Background(), 1)
		if r != nil {
			defer r()
		}
		lightDone <- out
	}()
	// The head sheds at its deadline; the light waiter must then be granted
	// the free token rather than timing out behind a ghost.
	if out := <-headDone; out != ShedTimeout {
		t.Fatalf("head outcome %v", out)
	}
	select {
	case out := <-lightDone:
		if out != Admitted {
			t.Fatalf("light outcome %v", out)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("light waiter stuck after heavy head shed")
	}
	relA()
}

func TestRetryAfterHintScalesWithQueue(t *testing.T) {
	c := New(Config{Capacity: 1, MaxQueue: 4, MaxWait: time.Second, RetryAfter: 100 * time.Millisecond})
	base := c.RetryAfterHint()
	if base != 100*time.Millisecond {
		t.Fatalf("base hint %v", base)
	}
	rel, _ := c.Acquire(context.Background(), 1)
	defer rel()
	for i := 0; i < 4; i++ {
		go c.Acquire(context.Background(), 1)
	}
	deadline := time.Now().Add(time.Second)
	for c.Stats().Queued != 4 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	if hint := c.RetryAfterHint(); hint <= base {
		t.Fatalf("hint %v did not scale above base %v with a full queue", hint, base)
	}
}

func TestConcurrentAcquireReleaseNoLeak(t *testing.T) {
	c := New(Config{Capacity: 4, MaxWait: 50 * time.Millisecond, MaxQueue: 64})
	var wg sync.WaitGroup
	var admitted, shed atomic.Uint64
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rel, out := c.Acquire(context.Background(), 1+i%3)
				if out == Admitted {
					admitted.Add(1)
					rel()
				} else {
					shed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("leaked capacity: %+v", st)
	}
	if st.Admitted != admitted.Load() || st.Sheds() != shed.Load() {
		t.Fatalf("counter mismatch: stats %+v vs local admitted=%d shed=%d",
			st, admitted.Load(), shed.Load())
	}
	if admitted.Load() == 0 {
		t.Fatal("nothing admitted")
	}
}
