// Command experiments regenerates every table and figure of the paper's
// evaluation and prints them as formatted tables.
//
//	experiments                # laptop-scale corpora (minutes)
//	experiments -full          # paper-scale corpora (hours)
//	experiments -only fig4     # a single experiment
//	experiments -seed 7 -pascal 40 -inria 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"puppies/internal/experiments"
	"puppies/internal/stats"
)

type runner struct {
	id  string
	run func(experiments.Config) (*stats.Table, error)
}

func main() {
	seed := flag.Int64("seed", 1, "corpus generation seed")
	full := flag.Bool("full", false, "paper-scale corpus sizes (slow)")
	pascal := flag.Int("pascal", 0, "override PASCAL-like image count")
	inria := flag.Int("inria", 0, "override INRIA-like image count")
	feret := flag.Int("feret", 0, "override FERET-like image count")
	caltech := flag.Int("caltech", 0, "override Caltech-like image count")
	quality := flag.Int("quality", 0, "override corpus JPEG quality")
	only := flag.String("only", "", "run a single experiment (comma-separated ids)")
	flag.Parse()

	cfg := experiments.Config{
		Seed: *seed, Full: *full,
		PascalN: *pascal, InriaN: *inria, FeretN: *feret, CaltechN: *caltech,
		Quality: *quality,
	}

	runners := []runner{
		{"table1", func(c experiments.Config) (*stats.Table, error) {
			_, tbl, err := experiments.Table1(c)
			return tbl, err
		}},
		{"table2", func(c experiments.Config) (*stats.Table, error) {
			_, tbl, err := experiments.Table2(c)
			return tbl, err
		}},
		{"table4", func(experiments.Config) (*stats.Table, error) {
			_, tbl, err := experiments.Table4()
			return tbl, err
		}},
		{"table5", func(c experiments.Config) (*stats.Table, error) {
			_, tbl, err := experiments.Table5(c)
			return tbl, err
		}},
		{"fig2", func(c experiments.Config) (*stats.Table, error) {
			_, tbl, err := experiments.Fig2(c)
			return tbl, err
		}},
		{"fig4", func(c experiments.Config) (*stats.Table, error) {
			_, tbl, err := experiments.Fig4(c)
			return tbl, err
		}},
		{"fig11", func(c experiments.Config) (*stats.Table, error) {
			_, tbl, err := experiments.Fig11(c)
			return tbl, err
		}},
		{"fig16", func(c experiments.Config) (*stats.Table, error) {
			_, tbl, err := experiments.Fig16(c)
			return tbl, err
		}},
		{"fig17", func(c experiments.Config) (*stats.Table, error) {
			_, tbl, err := experiments.Fig17(c)
			return tbl, err
		}},
		{"fig18", func(c experiments.Config) (*stats.Table, error) {
			_, tbl, err := experiments.Fig18(c)
			return tbl, err
		}},
		{"fig19", func(c experiments.Config) (*stats.Table, error) {
			_, tbl, err := experiments.Fig19(c)
			return tbl, err
		}},
		{"fig20", func(c experiments.Config) (*stats.Table, error) {
			_, tbl, err := experiments.Fig20(c)
			return tbl, err
		}},
		{"fig21", func(c experiments.Config) (*stats.Table, error) {
			_, tbl, err := experiments.Fig21(c)
			return tbl, err
		}},
		{"fig22", func(c experiments.Config) (*stats.Table, error) {
			_, tbl, err := experiments.Fig22(c)
			return tbl, err
		}},
		{"fig23", func(c experiments.Config) (*stats.Table, error) {
			_, tbl, err := experiments.Fig23(c)
			return tbl, err
		}},
		{"facedetect", func(c experiments.Config) (*stats.Table, error) {
			_, tbl, err := experiments.FaceDetection(c)
			return tbl, err
		}},
		{"bruteforce", func(experiments.Config) (*stats.Table, error) {
			_, tbl, err := experiments.BruteForceTable()
			return tbl, err
		}},
		{"roitiming", func(c experiments.Config) (*stats.Table, error) {
			_, tbl, err := experiments.ROITiming(c)
			return tbl, err
		}},
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}

	failed := 0
	for _, r := range runners {
		if len(selected) > 0 && !selected[r.id] {
			continue
		}
		start := time.Now()
		tbl, err := r.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", r.id, err)
			failed++
			continue
		}
		fmt.Printf("# %s (%.1fs)\n%s\n", r.id, time.Since(start).Seconds(), tbl.String())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
