// Command benchfmt converts `go test -bench` output into a stable JSON
// benchmark report, and compares two such reports for regressions.
//
// Format mode (default) reads benchmark output from stdin or the named
// files and writes a JSON array of results. Repeated runs of a benchmark
// (`-count N`) collapse to the fastest, so reports are best-of-N:
//
//	go test -bench . -benchmem -count 3 ./... | benchfmt -o BENCH.json
//
// Compare mode diffs two reports, printing a per-benchmark delta line, and
// exits non-zero when any benchmark regressed by more than the threshold in
// ns/op or allocs/op:
//
//	benchfmt -old BENCH_PR2.json -new BENCH_PR4.json
//
// By default every benchmark present in both reports is checked; -hot
// restricts the gate to named benchmarks (and makes their absence from the
// new report a failure). The older positional spelling
// `benchfmt -compare -hot Name1,Name2 old.json new.json` is kept working.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	MBPerS      float64            `json:"mb_per_s,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// parse reads `go test -bench` output and returns one Result per benchmark
// line, sorted by name. A benchmark appearing more than once (e.g. from
// `-count N`) keeps its fastest run — measurement noise on a shared box is
// purely additive, so best-of-N is the run closest to the true cost. The
// whole fastest line is kept, not per-metric minima, so a report row is
// always one self-consistent measurement.
func parse(r io.Reader) ([]Result, error) {
	byName := map[string]Result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		// Strip the -GOMAXPROCS suffix so reports from different machines
		// compare by logical benchmark name.
		name := regexp.MustCompile(`-\d+$`).ReplaceAllString(m[1], "")
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: bad iteration count in %q: %w", sc.Text(), err)
		}
		res := Result{Name: name, Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: bad value %q in %q: %w", fields[i], sc.Text(), err)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "MB/s":
				res.MBPerS = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[unit] = v
			}
		}
		if prev, ok := byName[name]; !ok || res.NsPerOp < prev.NsPerOp {
			byName[name] = res
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(byName))
	for _, r := range byName {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func readReport(path string) (map[string]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var list []Result
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	m := make(map[string]Result, len(list))
	for _, r := range list {
		m[r.Name] = r
	}
	return m, nil
}

// compare prints a delta line per benchmark and reports whether any
// regressed beyond threshold in ns/op or allocs/op. With an empty hot list
// it checks every benchmark common to both reports; with an explicit list,
// a benchmark missing from the new report is itself a failure.
func compare(oldPath, newPath string, hot []string, threshold float64, w io.Writer) (failed bool, err error) {
	oldR, err := readReport(oldPath)
	if err != nil {
		return false, err
	}
	newR, err := readReport(newPath)
	if err != nil {
		return false, err
	}
	names := hot
	if len(names) == 0 {
		var oldOnly, newOnly []string
		for name := range oldR {
			if _, ok := newR[name]; ok {
				names = append(names, name)
			} else {
				oldOnly = append(oldOnly, name)
			}
		}
		for name := range newR {
			if _, ok := oldR[name]; !ok {
				newOnly = append(newOnly, name)
			}
		}
		sort.Strings(oldOnly)
		sort.Strings(newOnly)
		for _, name := range oldOnly {
			fmt.Fprintf(w, "%-45s only in %s (skipped)\n", name, oldPath)
		}
		// A benchmark only in the new report has no baseline to gate
		// against; warn so it is added to HOT_BENCHMARKS (or the baseline
		// regenerated) rather than silently riding along ungated.
		for _, name := range newOnly {
			fmt.Fprintf(w, "%-45s WARNING: new benchmark, no baseline in %s (not gated)\n", name, oldPath)
		}
		sort.Strings(names)
	}
	for _, name := range names {
		o, okO := oldR[name]
		n, okN := newR[name]
		switch {
		case !okO:
			fmt.Fprintf(w, "%-45s missing from %s (skipped)\n", name, oldPath)
		case !okN:
			fmt.Fprintf(w, "%-45s MISSING from %s\n", name, newPath)
			failed = true
		case o.NsPerOp <= 0:
			fmt.Fprintf(w, "%-45s old ns/op is zero (skipped)\n", name)
		default:
			ratio := n.NsPerOp/o.NsPerOp - 1
			status := "ok"
			if ratio > threshold {
				status = "REGRESSION(ns/op)"
				failed = true
			}
			allocs := ""
			if o.AllocsPerOp > 0 {
				aRatio := n.AllocsPerOp/o.AllocsPerOp - 1
				allocs = fmt.Sprintf("  %8.0f -> %8.0f allocs/op  %+7.2f%%", o.AllocsPerOp, n.AllocsPerOp, 100*aRatio)
				if aRatio > threshold {
					status = "REGRESSION(allocs/op)"
					failed = true
				}
			}
			fmt.Fprintf(w, "%-45s %14.0f -> %14.0f ns/op  %+7.2f%%%s  %s\n",
				name, o.NsPerOp, n.NsPerOp, 100*ratio, allocs, status)
		}
	}
	return failed, nil
}

// ratioExpr is one parsed -ratio assertion: value(num)/value(den) >= min,
// where value is the named metric (default ns/op) from the NEW report.
type ratioExpr struct {
	num, den string
	min      float64
	unit     string
}

var ratioRE = regexp.MustCompile(`^([^/,]+)/([^>,]+)>=([0-9.]+)(?::(.+))?$`)

func parseRatios(s string) ([]ratioExpr, error) {
	var out []ratioExpr
	for _, raw := range strings.Split(s, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		m := ratioRE.FindStringSubmatch(raw)
		if m == nil {
			return nil, fmt.Errorf("benchfmt: bad -ratio expression %q (want NUM/DEN>=F[:unit])", raw)
		}
		min, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchfmt: bad -ratio bound in %q: %w", raw, err)
		}
		unit := m[4]
		if unit == "" {
			unit = "ns/op"
		}
		out = append(out, ratioExpr{num: strings.TrimSpace(m[1]), den: strings.TrimSpace(m[2]), min: min, unit: unit})
	}
	return out, nil
}

func (e ratioExpr) value(r Result) (float64, bool) {
	switch e.unit {
	case "ns/op":
		return r.NsPerOp, r.NsPerOp > 0
	case "MB/s":
		return r.MBPerS, r.MBPerS > 0
	case "B/op":
		return r.BytesPerOp, r.BytesPerOp > 0
	case "allocs/op":
		return r.AllocsPerOp, r.AllocsPerOp > 0
	default:
		v, ok := r.Metrics[e.unit]
		return v, ok && v > 0
	}
}

// checkRatios enforces cross-benchmark assertions against the new report:
// each expression requires value(num)/value(den) >= min. A missing
// benchmark or metric fails — a perf guarantee that silently stops being
// measured is a regression too.
func checkRatios(newR map[string]Result, exprs []ratioExpr, w io.Writer) (failed bool) {
	for _, e := range exprs {
		num, okN := newR[e.num]
		den, okD := newR[e.den]
		if !okN || !okD {
			fmt.Fprintf(w, "ratio %s/%s: MISSING benchmark (have %s=%v %s=%v)\n", e.num, e.den, e.num, okN, e.den, okD)
			failed = true
			continue
		}
		nv, okN := e.value(num)
		dv, okD := e.value(den)
		if !okN || !okD {
			fmt.Fprintf(w, "ratio %s/%s: MISSING %s metric\n", e.num, e.den, e.unit)
			failed = true
			continue
		}
		got := nv / dv
		status := "ok"
		if got < e.min {
			status = "RATIO BELOW BOUND"
			failed = true
		}
		fmt.Fprintf(w, "ratio %s/%s = %.2fx (%s, want >= %.2fx)  %s\n", e.num, e.den, got, e.unit, e.min, status)
	}
	return failed
}

func main() {
	var (
		out       = flag.String("o", "", "write JSON report to this file (default stdout)")
		doCompare = flag.Bool("compare", false, "compare two JSON reports: benchfmt -compare old.json new.json")
		oldPath   = flag.String("old", "", "baseline JSON report; with -new, enters compare mode")
		newPath   = flag.String("new", "", "candidate JSON report; with -old enters compare mode, with only -ratio checks that report alone")
		hot       = flag.String("hot", "", "comma-separated benchmark names to gate on (default: all common)")
		threshold = flag.Float64("threshold", 0.10, "allowed ns/op and allocs/op regression fraction in compare mode")
		ratios    = flag.String("ratio", "", "comma-separated cross-benchmark assertions on the new report, e.g. 'BenchSeq/BenchBatch>=2:ns/op'")
	)
	flag.Parse()

	ratioExprs, err := parseRatios(*ratios)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var names []string
	for _, n := range strings.Split(*hot, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}

	// Ratio-only mode: -new + -ratio with no baseline asserts cross-
	// benchmark (and, via synthetic SLO rows, absolute) bounds against a
	// single report — what `make load-gate` runs against loadgen output,
	// where there is no meaningful "old" report to diff.
	if *newPath != "" && *oldPath == "" {
		if len(ratioExprs) == 0 || flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "benchfmt: -new without -old needs -ratio assertions (and no positional files)")
			os.Exit(2)
		}
		newR, err := readReport(*newPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if checkRatios(newR, ratioExprs, os.Stdout) {
			os.Exit(1)
		}
		return
	}

	if *oldPath != "" || *newPath != "" {
		if *oldPath == "" || *newPath == "" || flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "benchfmt: compare mode needs both -old and -new (and no positional files)")
			os.Exit(2)
		}
		failed, err := compare(*oldPath, *newPath, names, *threshold, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if len(ratioExprs) > 0 {
			newR, err := readReport(*newPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			if checkRatios(newR, ratioExprs, os.Stdout) {
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	if *doCompare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchfmt: -compare needs exactly two report files")
			os.Exit(2)
		}
		if len(names) == 0 {
			fmt.Fprintln(os.Stderr, "benchfmt: -compare needs -hot benchmark names")
			os.Exit(2)
		}
		failed, err := compare(flag.Arg(0), flag.Arg(1), names, *threshold, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		readers := make([]io.Reader, 0, flag.NArg())
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			defer f.Close()
			readers = append(readers, f)
		}
		in = io.MultiReader(readers...)
	}
	results, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}
