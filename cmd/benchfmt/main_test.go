package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: puppies
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEncryptThroughput-4 	    3433	    681571 ns/op	 865.39 MB/s	 2365632 B/op	      53 allocs/op
BenchmarkTable5EncDecTime 	       1	 412534317 ns/op	        11.54 inria-ms	         0.8863 pascal-ms
PASS
ok  	puppies	5.109s
`

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	// Sorted by name; -GOMAXPROCS suffix stripped.
	if results[0].Name != "BenchmarkEncryptThroughput" {
		t.Errorf("name %q, want suffix-stripped BenchmarkEncryptThroughput", results[0].Name)
	}
	if results[0].NsPerOp != 681571 || results[0].MBPerS != 865.39 || results[0].AllocsPerOp != 53 {
		t.Errorf("unexpected measurements: %+v", results[0])
	}
	if got := results[1].Metrics["inria-ms"]; got != 11.54 {
		t.Errorf("custom metric inria-ms = %v, want 11.54", got)
	}
}

// TestParseBestOfN: with -count N a benchmark appears N times; the report
// keeps the fastest whole line (not per-metric minima across lines).
func TestParseBestOfN(t *testing.T) {
	const repeated = `BenchmarkX-4 	     100	    2000 ns/op	      60 allocs/op
BenchmarkX-4 	     100	    1000 ns/op	      80 allocs/op
BenchmarkX-4 	     100	    3000 ns/op	      40 allocs/op
`
	results, err := parse(strings.NewReader(repeated))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("parsed %d results, want 1", len(results))
	}
	if results[0].NsPerOp != 1000 {
		t.Errorf("ns/op = %v, want the fastest run's 1000", results[0].NsPerOp)
	}
	if results[0].AllocsPerOp != 80 {
		t.Errorf("allocs/op = %v, want the fastest run's own 80", results[0].AllocsPerOp)
	}
}

func writeReport(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompare(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json",
		`[{"name":"BenchmarkA","iterations":1,"ns_per_op":1000},{"name":"BenchmarkB","iterations":1,"ns_per_op":1000}]`)
	newOK := writeReport(t, dir, "new_ok.json",
		`[{"name":"BenchmarkA","iterations":1,"ns_per_op":1050},{"name":"BenchmarkB","iterations":1,"ns_per_op":500}]`)
	newBad := writeReport(t, dir, "new_bad.json",
		`[{"name":"BenchmarkA","iterations":1,"ns_per_op":1200},{"name":"BenchmarkB","iterations":1,"ns_per_op":1000}]`)

	var sb strings.Builder
	failed, err := compare(oldP, newOK, []string{"BenchmarkA", "BenchmarkB"}, 0.10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("5%% slowdown flagged as regression:\n%s", sb.String())
	}

	sb.Reset()
	failed, err = compare(oldP, newBad, []string{"BenchmarkA"}, 0.10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("20%% slowdown not flagged:\n%s", sb.String())
	}

	// A hot benchmark missing from the new report is a failure.
	sb.Reset()
	failed, err = compare(oldP, newOK, []string{"BenchmarkMissing", "BenchmarkA"}, 0.10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("benchmark missing from OLD report should be skipped, not failed:\n%s", sb.String())
	}
	onlyOld := writeReport(t, dir, "only_old.json",
		`[{"name":"BenchmarkGone","iterations":1,"ns_per_op":1000}]`)
	sb.Reset()
	failed, err = compare(onlyOld, newOK, []string{"BenchmarkGone"}, 0.10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("benchmark missing from NEW report should fail:\n%s", sb.String())
	}
}

func TestCompareAllCommon(t *testing.T) {
	dir := t.TempDir()
	oldP := writeReport(t, dir, "old.json",
		`[{"name":"BenchmarkA","iterations":1,"ns_per_op":1000,"allocs_per_op":100},
		  {"name":"BenchmarkB","iterations":1,"ns_per_op":1000},
		  {"name":"BenchmarkGone","iterations":1,"ns_per_op":1000}]`)
	newOK := writeReport(t, dir, "new_ok.json",
		`[{"name":"BenchmarkA","iterations":1,"ns_per_op":900,"allocs_per_op":105},
		  {"name":"BenchmarkB","iterations":1,"ns_per_op":1050},
		  {"name":"BenchmarkNew","iterations":1,"ns_per_op":1}]`)

	// Empty hot list: every common benchmark is compared; benchmarks present
	// in only one report are reported but do not fail the gate.
	var sb strings.Builder
	failed, err := compare(oldP, newOK, nil, 0.10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("within-threshold deltas flagged as regression:\n%s", sb.String())
	}
	for _, want := range []string{"BenchmarkA", "BenchmarkB", "BenchmarkGone", "BenchmarkNew"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("output missing %s:\n%s", want, sb.String())
		}
	}
	// A new-only benchmark warns explicitly that it is ungated.
	if !strings.Contains(sb.String(), "WARNING: new benchmark") {
		t.Errorf("new-only benchmark not flagged as ungated:\n%s", sb.String())
	}

	// An allocs/op regression beyond threshold fails even when ns/op improved.
	newAllocs := writeReport(t, dir, "new_allocs.json",
		`[{"name":"BenchmarkA","iterations":1,"ns_per_op":500,"allocs_per_op":150},
		  {"name":"BenchmarkB","iterations":1,"ns_per_op":1000}]`)
	sb.Reset()
	failed, err = compare(oldP, newAllocs, nil, 0.10, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("50%% allocs/op growth not flagged:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION(allocs/op)") {
		t.Errorf("output does not name the allocs/op regression:\n%s", sb.String())
	}
}

func TestRatioGate(t *testing.T) {
	newR := map[string]Result{
		"BenchmarkSeq":   {Name: "BenchmarkSeq", NsPerOp: 2100},
		"BenchmarkBatch": {Name: "BenchmarkBatch", NsPerOp: 1000},
		"BenchmarkNorm":  {Name: "BenchmarkNorm", Metrics: map[string]float64{"coeff-bytes/op": 300}},
		"BenchmarkNat":   {Name: "BenchmarkNat", Metrics: map[string]float64{"coeff-bytes/op": 150}},
	}

	exprs, err := parseRatios("BenchmarkSeq/BenchmarkBatch>=2, BenchmarkNorm/BenchmarkNat>=1.5:coeff-bytes/op")
	if err != nil {
		t.Fatal(err)
	}
	if len(exprs) != 2 || exprs[0].unit != "ns/op" || exprs[1].unit != "coeff-bytes/op" {
		t.Fatalf("parsed %+v", exprs)
	}
	var sb strings.Builder
	if checkRatios(newR, exprs, &sb) {
		t.Fatalf("satisfied ratios flagged as failure:\n%s", sb.String())
	}

	// A ratio below its bound fails.
	exprs, err = parseRatios("BenchmarkSeq/BenchmarkBatch>=2.5")
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if !checkRatios(newR, exprs, &sb) {
		t.Fatalf("2.1x below a 2.5x bound not flagged:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "RATIO BELOW BOUND") {
		t.Errorf("output does not name the violation:\n%s", sb.String())
	}

	// A missing benchmark or metric fails rather than silently passing.
	exprs, _ = parseRatios("BenchmarkSeq/BenchmarkMissing>=2")
	sb.Reset()
	if !checkRatios(newR, exprs, &sb) {
		t.Fatalf("missing denominator benchmark not flagged:\n%s", sb.String())
	}
	exprs, _ = parseRatios("BenchmarkSeq/BenchmarkBatch>=1:coeff-bytes/op")
	sb.Reset()
	if !checkRatios(newR, exprs, &sb) {
		t.Fatalf("missing metric not flagged:\n%s", sb.String())
	}

	// Malformed expressions are rejected up front.
	if _, err := parseRatios("BenchmarkSeq>=2"); err == nil {
		t.Fatal("malformed ratio accepted")
	}
}

func TestRatioGateSingleLoadgenReport(t *testing.T) {
	// The load-gate flow: loadgen writes rows including a synthetic
	// LoadSLOHotGet row carrying the SLO bounds, and benchfmt asserts
	// them as ratios against that single report — no baseline needed.
	dir := t.TempDir()
	path := filepath.Join(dir, "load.json")
	if err := os.WriteFile(path, []byte(`[
		{"name":"LoadHotGet","iterations":5000,"ns_per_op":800000,
		 "metrics":{"p99-ns":4000000,"ok-per-op":1}},
		{"name":"LoadOverall","iterations":9000,"ns_per_op":900000,
		 "metrics":{"ok-per-op":1,"shed-count":36}},
		{"name":"LoadSLOHotGet","iterations":1,"ns_per_op":1,
		 "metrics":{"p99-ns":250000000,"ok-per-op":1}}
	]`), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := readReport(path)
	if err != nil {
		t.Fatal(err)
	}
	exprs, err := parseRatios("LoadSLOHotGet/LoadHotGet>=1:p99-ns,LoadOverall/LoadSLOHotGet>=1:ok-per-op")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if checkRatios(rep, exprs, &sb) {
		t.Fatalf("SLO-satisfying report flagged:\n%s", sb.String())
	}

	// A p99 over the ceiling must fail the first expression.
	rep["LoadHotGet"].Metrics["p99-ns"] = 400000000
	sb.Reset()
	if !checkRatios(rep, exprs, &sb) {
		t.Fatalf("p99 over ceiling not flagged:\n%s", sb.String())
	}

	// Any unexpected failure drops ok-per-op below 1 and must fail too.
	rep["LoadHotGet"].Metrics["p99-ns"] = 4000000
	rep["LoadOverall"].Metrics["ok-per-op"] = 0.9998
	sb.Reset()
	if !checkRatios(rep, exprs, &sb) {
		t.Fatalf("ok-per-op below 1 not flagged:\n%s", sb.String())
	}
}
