package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

// startDaemonInProc runs the pspd body in-process with the given extra flags and returns its base
// URL plus a shutdown func that waits for a clean exit.
func startDaemonInProc(t *testing.T, extra ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	runErr := make(chan error, 1)
	var out bytes.Buffer
	args := append([]string{"-addr", "127.0.0.1:0", "-drain-grace", "0"}, extra...)
	go func() { runErr <- run(ctx, args, &out, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-runErr:
		t.Fatalf("run exited before ready: %v (output: %s)", err, out.String())
	case <-time.After(5 * time.Second):
		t.Fatal("run never became ready")
	}
	return "http://" + addr, func() {
		cancel()
		select {
		case err := <-runErr:
			if err != nil {
				t.Fatalf("shutdown: %v (output: %s)", err, out.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatal("run did not return after shutdown")
		}
	}
}

func postJSON(t *testing.T, url string, payload interface{}, out interface{}) {
	t.Helper()
	body, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: HTTP %d: %s", url, resp.StatusCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatal(err)
		}
	}
}

func searchIndexed(t *testing.T, base string) int {
	t.Helper()
	resp, err := http.Get(base + "/v1/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Search struct {
			Indexed int `json:"indexed"`
		} `json:"search"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.Search.Indexed
}

// TestSearchIndexPersistsAcrossRestart uploads through a durable daemon,
// restarts it, and checks the restarted daemon answers /v1/search from the
// reloaded snapshot — the statz indexed count is non-zero before any query
// could have lazily backfilled it.
func TestSearchIndexPersistsAcrossRestart(t *testing.T) {
	work := t.TempDir()
	base, shutdown := startDaemonInProc(t, "-data-dir", work)

	var up struct {
		ID string `json:"id"`
	}
	postJSON(t, base+"/v1/images", map[string]interface{}{
		"image": base64.StdEncoding.EncodeToString(testJPEG(t)),
	}, &up)
	if up.ID == "" {
		t.Fatal("upload returned no id")
	}
	if got := searchIndexed(t, base); got != 1 {
		t.Fatalf("indexed = %d after upload, want 1", got)
	}
	shutdown()

	base, shutdown = startDaemonInProc(t, "-data-dir", work)
	defer shutdown()
	if got := searchIndexed(t, base); got != 1 {
		t.Fatalf("indexed = %d after restart, want 1 (index not reloaded)", got)
	}
	resp, err := http.Get(base + "/v1/search?id=" + up.ID + "&k=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr struct {
		Results []struct {
			ID       string `json:"id"`
			Distance uint32 `json:"distance"`
		} `json:"results"`
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search after restart: HTTP %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) == 0 || sr.Results[0].ID != up.ID || sr.Results[0].Distance != 0 {
		t.Fatalf("search after restart = %+v, want %s at distance 0", sr.Results, up.ID)
	}
}
