package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"io"
	"math"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
)

func testJPEG(t *testing.T) []byte {
	t.Helper()
	const w, h = 48, 48
	img, err := imgplane.New(w, h, 3)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			img.Planes[0].Pix[i] = float32(100 + 80*math.Sin(float64(x)/6))
			img.Planes[1].Pix[i] = 128
			img.Planes[2].Pix[i] = 128
		}
	}
	jimg, err := jpegc.FromPlanar(img, jpegc.Options{Quality: 80})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := jimg.Encode(&buf, jpegc.EncodeOptions{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGracefulShutdownCompletesInFlightTransform is the ISSUE's acceptance
// (c): every request is slowed by deterministic injected latency, shutdown
// is triggered while a transform request is in flight, and the daemon both
// finishes that request and exits cleanly (nil error, not log.Fatal).
func TestGracefulShutdownCompletesInFlightTransform(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	var out bytes.Buffer
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-drain", "5s",
			"-fault-seed", "1",
			"-fault-rate", "1",
			"-fault-latency", "150ms",
		}, &out, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-runErr:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("run never became ready")
	}
	base := "http://" + addr

	// Upload an image to transform (this request also eats the latency).
	body, err := json.Marshal(map[string]interface{}{
		"image":  base64.StdEncoding.EncodeToString(testJPEG(t)),
		"params": nil,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/images", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: HTTP %d: %s", resp.StatusCode, raw)
	}
	var up struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &up); err != nil {
		t.Fatal(err)
	}

	// Fire the transform, then cancel the daemon while the injected
	// 150ms latency keeps the request in flight.
	type result struct {
		code int
		body []byte
		err  error
	}
	res := make(chan result, 1)
	go func() {
		resp, err := http.Get(base + "/v1/images/" + up.ID + "/transformed?spec=" +
			`%7B%22op%22%3A%22rotate90%22%7D`)
		if err != nil {
			res <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		res <- result{code: resp.StatusCode, body: b, err: err}
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case r := <-res:
		if r.err != nil {
			t.Fatalf("in-flight transform failed during shutdown: %v", r.err)
		}
		if r.code != http.StatusOK {
			t.Fatalf("in-flight transform: HTTP %d: %s", r.code, r.body)
		}
		img, err := jpegc.Decode(bytes.NewReader(r.body))
		if err != nil {
			t.Fatalf("transform served during shutdown is not a valid JPEG: %v", err)
		}
		if img.W != 48 || img.H != 48 {
			t.Errorf("rotated dims %dx%d", img.W, img.H)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight transform never completed")
	}

	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("clean shutdown returned error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after shutdown")
	}
	if !strings.Contains(out.String(), "pspd stopped cleanly") {
		t.Errorf("missing clean-stop log; output:\n%s", out.String())
	}
}

func TestHealthzAndCleanIdleShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	var out bytes.Buffer
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{"-addr", "127.0.0.1:0"}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-runErr:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("run never became ready")
	}
	resp, err := http.Get("http://" + addr + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(raw, []byte(`"ok"`)) {
		t.Errorf("healthz: HTTP %d %s", resp.StatusCode, raw)
	}
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Errorf("idle shutdown returned error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return after cancel")
	}
}

// TestStatzAndConditionalGet boots the daemon with small explicit cache
// budgets, drives the transformed route twice plus a conditional GET, and
// checks /v1/statz reflects the hit, the single computation, and the 304.
func TestStatzAndConditionalGet(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	var out bytes.Buffer
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-cache-bytes", "8388608",
			"-coeff-cache-bytes", "8388608",
		}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-runErr:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("run never became ready")
	}
	base := "http://" + addr

	body, err := json.Marshal(map[string]interface{}{
		"image":  base64.StdEncoding.EncodeToString(testJPEG(t)),
		"params": nil,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/images", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: HTTP %d: %s", resp.StatusCode, raw)
	}
	var up struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &up); err != nil {
		t.Fatal(err)
	}

	url := base + "/v1/images/" + up.ID + "/transformed?spec=%7B%22op%22%3A%22rotate90%22%7D"
	get := func() *http.Response {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	first := get()
	if first.StatusCode != http.StatusOK {
		t.Fatalf("transform: HTTP %d", first.StatusCode)
	}
	etag := first.Header.Get("ETag")
	if etag == "" {
		t.Fatal("transformed response missing ETag")
	}
	second := get()
	if second.StatusCode != http.StatusOK {
		t.Fatalf("repeat transform: HTTP %d", second.StatusCode)
	}

	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag)
	cond, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, cond.Body)
	cond.Body.Close()
	if cond.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET: HTTP %d, want 304", cond.StatusCode)
	}

	statz, err := http.Get(base + "/v1/statz")
	if err != nil {
		t.Fatal(err)
	}
	statzBody, _ := io.ReadAll(statz.Body)
	statz.Body.Close()
	if statz.StatusCode != http.StatusOK {
		t.Fatalf("statz: HTTP %d", statz.StatusCode)
	}
	var stats struct {
		Variants struct {
			Hits     uint64 `json:"hits"`
			MaxBytes int64  `json:"maxBytes"`
		} `json:"variants"`
		TransformsComputed uint64 `json:"transformsComputed"`
		NotModified        uint64 `json:"notModified"`
	}
	if err := json.Unmarshal(statzBody, &stats); err != nil {
		t.Fatalf("statz not JSON: %v\n%s", err, statzBody)
	}
	if stats.TransformsComputed != 1 {
		t.Errorf("transformsComputed = %d, want 1", stats.TransformsComputed)
	}
	if stats.Variants.Hits == 0 {
		t.Error("no variant cache hits recorded")
	}
	if stats.NotModified != 1 {
		t.Errorf("notModified = %d, want 1", stats.NotModified)
	}
	if stats.Variants.MaxBytes != 8388608 {
		t.Errorf("variant cache budget = %d, want the -cache-bytes value", stats.Variants.MaxBytes)
	}
	if !strings.Contains(out.String(), "pspd serve cache: variants=8388608B coeffs=8388608B") {
		t.Errorf("missing cache startup log; output:\n%s", out.String())
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Errorf("shutdown returned error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return after cancel")
	}
}

// TestShutdownAdvertisesDrainingOnHealthz: the moment shutdown begins,
// /v1/healthz answers 503 with Retry-After while the listener is still
// accepting — the window a routing gateway needs to take the shard out of
// rotation before connections start failing.
func TestShutdownAdvertisesDrainingOnHealthz(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	var out bytes.Buffer
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-drain-grace", "600ms",
		}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-runErr:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("run never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before shutdown: HTTP %d", resp.StatusCode)
	}

	cancel()
	// Within the grace window healthz must flip to 503 + Retry-After while
	// still being served (no connection errors).
	deadline := time.Now().Add(500 * time.Millisecond)
	sawDraining := false
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/healthz")
		if err != nil {
			t.Fatalf("healthz during drain grace failed at transport level: %v", err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("draining healthz missing Retry-After")
			}
			if !bytes.Contains(raw, []byte(`"draining"`)) {
				t.Fatalf("draining healthz body: %s", raw)
			}
			sawDraining = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawDraining {
		t.Fatal("healthz never advertised draining inside the grace window")
	}

	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drain shutdown returned error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after cancel")
	}
	if !strings.Contains(out.String(), "pspd draining: healthz now 503") {
		t.Errorf("missing draining log; output:\n%s", out.String())
	}
}

func TestListenFailureIsReported(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	err = run(context.Background(), []string{"-addr", ln.Addr().String()}, io.Discard, nil)
	if err == nil {
		t.Fatal("run on an occupied port returned nil")
	}
	if !strings.Contains(err.Error(), "listen") {
		t.Errorf("listen failure error = %v", err)
	}
}
