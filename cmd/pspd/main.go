// Command pspd runs the Photo Sharing Platform simulator: an HTTP service
// that stores perturbed images with their public parameters and transforms
// them on request, with no knowledge of PuPPIeS (paper Fig. 5).
//
//	pspd -addr :8754
//
// API (see internal/psp):
//
//	POST /v1/images                          upload {image, params} -> {id}
//	GET  /v1/images/{id}                     stored JPEG
//	GET  /v1/images/{id}/params              public parameters
//	GET  /v1/images/{id}/transformed?spec=J  transformed JPEG
//	GET  /v1/images/{id}/pixels?spec=J       transformed lossless pixels
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"puppies/internal/psp"
)

func main() {
	addr := flag.String("addr", ":8754", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           psp.NewServer().Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("pspd listening on %s\n", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
