// Command pspd runs the Photo Sharing Platform simulator: an HTTP service
// that stores perturbed images with their public parameters and transforms
// them on request, with no knowledge of PuPPIeS (paper Fig. 5).
//
//	pspd -addr :8754
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: GET /v1/healthz
// flips to 503 (with Retry-After) immediately so routing gateways stop
// sending traffic, the listener stays open for -drain-grace, then in-flight
// requests get -drain to finish and a clean shutdown exits 0. Each request
// is bounded by -request-timeout, and while healthy GET /v1/healthz reports
// liveness plus the store size.
//
// With -data-dir the daemon stores images durably via internal/blobstore:
// every upload is written as a checksummed envelope with write-to-temp,
// fsync, and atomic rename, so a crash (even SIGKILL or power loss) never
// corrupts an acknowledged image. On start the directory is scanned, bad
// files are quarantined (never deleted), and a recovery report is logged.
// Without -data-dir images live in memory only; either way the idempotency
// key index is bounded by -idempotency-cap (and -idempotency-ttl in memory
// mode).
//
// The serving path is cached (see internal/servecache): -cache-bytes
// budgets the encoded transform-output LRU and -coeff-cache-bytes the
// decoded-coefficient LRU (0 disables either). Concurrent identical
// requests collapse into one computation, image GETs carry strong ETags
// with Cache-Control: immutable, and GET /v1/statz reports hit/miss/
// eviction/collapse counters as JSON.
//
// For resilience testing, -fault-seed with -fault-rate/-fault-latency wires
// the deterministic internal/faults middleware in front of the API.
//
// API (see internal/psp):
//
//	GET  /v1/healthz                         liveness + store size
//	GET  /v1/statz                           serving-cache statistics
//	POST /v1/images                          upload {image, params} -> {id}
//	GET  /v1/images/{id}                     stored JPEG
//	GET  /v1/images/{id}/params              public parameters
//	GET  /v1/images/{id}/transformed?spec=J  transformed JPEG
//	GET  /v1/images/{id}/pixels?spec=J       transformed lossless pixels
//	GET  /v1/search?id=X&k=K                 k nearest stored images to image X
//	POST /v1/search?k=K                      k nearest stored images to the posted image
//
// Every accepted upload is also signature-indexed for /v1/search; with
// -data-dir (or an explicit -search-dir) the index persists via snapshot +
// journal and reloads on restart.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"puppies/internal/blobstore"
	"puppies/internal/faults"
	"puppies/internal/psp"
	"puppies/internal/searchidx"
)

func cacheBudgetString(v int64) string {
	if v < 0 {
		return "off"
	}
	return fmt.Sprintf("%dB", v)
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		log.Fatal(err)
	}
}

// run is the testable daemon body. It serves until ctx is cancelled, then
// drains in-flight requests and returns nil on a clean shutdown. If ready
// is non-nil it receives the bound listen address once the socket is open.
func run(ctx context.Context, args []string, stdout io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("pspd", flag.ContinueOnError)
	addr := fs.String("addr", ":8754", "listen address")
	dataDir := fs.String("data-dir", "", "durable storage directory; empty keeps images in memory only")
	searchDir := fs.String("search-dir", "", "persistent search-index directory (default <data-dir>/searchidx when -data-dir is set; empty with no -data-dir keeps the index in memory)")
	idemCap := fs.Int("idempotency-cap", psp.DefaultMaxKeys, "max idempotency keys remembered (LRU eviction beyond)")
	idemTTL := fs.Duration("idempotency-ttl", psp.DefaultKeyTTL, "idempotency key lifetime (memory store; 0 disables expiry)")
	cacheBytes := fs.Int64("cache-bytes", psp.DefaultVariantCacheBytes, "encoded transform-output cache budget in bytes (0 disables)")
	coeffCacheBytes := fs.Int64("coeff-cache-bytes", psp.DefaultCoeffCacheBytes, "decoded-coefficient cache budget in bytes (0 disables)")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	drainGrace := fs.Duration("drain-grace", 250*time.Millisecond, "how long healthz advertises draining (503) before the listener closes")
	reqTimeout := fs.Duration("request-timeout", 60*time.Second, "per-request handler timeout (0 disables)")
	maxInflight := fs.Int("max-inflight", 0, "admission capacity in weighted units (0 = 16/proc default, negative disables shedding)")
	admitWait := fs.Duration("admit-wait", 0, "max time a request may queue for admission before a 429 (0 = default)")
	admitQueue := fs.Int("admit-queue", 0, "admission queue length beyond capacity (0 = default)")
	admitRetryAfter := fs.Duration("admit-retry-after", 0, "base Retry-After hint on 429 responses (0 = default)")
	faultSeed := fs.Int64("fault-seed", 0, "enable fault-injection middleware with this RNG seed (0 disables)")
	faultRate := fs.Float64("fault-rate", 0, "probability of injecting the configured fault per request")
	faultLatency := fs.Duration("fault-latency", 0, "injected latency; with zero latency the injected fault is a 503")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var store psp.Store
	if *dataDir != "" {
		bs, report, err := blobstore.Open(*dataDir, blobstore.Options{MaxKeys: *idemCap})
		if err != nil {
			return fmt.Errorf("pspd: open data dir %s: %w", *dataDir, err)
		}
		defer bs.Close()
		fmt.Fprintf(stdout, "pspd recovery: %d records loaded, %d quarantined, %d unsupported, %d uploads pending at crash\n",
			report.Loaded, len(report.Quarantined), len(report.Unsupported), len(report.PendingUploads))
		for _, q := range report.Quarantined {
			fmt.Fprintf(stdout, "pspd quarantined %s -> %s: %s\n", q.From, q.To, q.Reason)
		}
		for _, u := range report.Unsupported {
			fmt.Fprintf(stdout, "pspd skipped future-version record %s\n", u)
		}
		store = bs
	} else {
		store = psp.NewMemStoreBounded(*idemCap, *idemTTL, nil)
	}
	server := psp.NewServerWith(store)
	// The search index persists next to the blobs by default: a restarted
	// daemon answers /v1/search without rescanning and re-decoding the store.
	sixDir := *searchDir
	if sixDir == "" && *dataDir != "" {
		sixDir = filepath.Join(*dataDir, "searchidx")
	}
	if sixDir != "" {
		six, err := searchidx.OpenDir(sixDir)
		if err != nil {
			return fmt.Errorf("pspd: open search index %s: %w", sixDir, err)
		}
		defer six.Close()
		server.SearchIndex = six
		fmt.Fprintf(stdout, "pspd search index: %d signatures loaded from %s\n", six.Len(), sixDir)
	}
	// Flag semantics: 0 disables a cache; the Server field spells that -1.
	server.VariantCacheBytes = *cacheBytes
	if *cacheBytes <= 0 {
		server.VariantCacheBytes = -1
	}
	server.CoeffCacheBytes = *coeffCacheBytes
	if *coeffCacheBytes <= 0 {
		server.CoeffCacheBytes = -1
	}
	fmt.Fprintf(stdout, "pspd serve cache: variants=%s coeffs=%s\n",
		cacheBudgetString(server.VariantCacheBytes), cacheBudgetString(server.CoeffCacheBytes))
	server.MaxInflight = *maxInflight
	server.AdmitWait = *admitWait
	server.AdmitQueue = *admitQueue
	server.AdmitRetryAfter = *admitRetryAfter
	handler := server.Handler()
	if *faultSeed != 0 {
		fault := faults.Fault{Kind: faults.Status503}
		if *faultLatency > 0 {
			fault = faults.Fault{Kind: faults.Latency, Delay: *faultLatency}
		}
		inj := faults.New(*faultSeed)
		inj.Rule(faults.Rule{Rate: *faultRate, Fault: fault})
		handler = inj.Middleware(handler)
		fmt.Fprintf(stdout, "pspd fault injection on: seed=%d rate=%g fault=%s\n",
			*faultSeed, *faultRate, fault.Kind)
	}
	// The timeout wraps the fault middleware so injected latency counts as
	// handler time: a stalled (faulted) request is cut off at -request-timeout
	// like any other slow handler.
	if *reqTimeout > 0 {
		handler = http.TimeoutHandler(handler, *reqTimeout, "request timed out\n")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("pspd: listen: %w", err)
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	fmt.Fprintf(stdout, "pspd listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Serve only returns before shutdown on a real listener error.
		return fmt.Errorf("pspd: serve: %w", err)
	case <-ctx.Done():
	}

	// Flip healthz to 503 the moment shutdown begins and keep the listener
	// open for a grace period: health-checking gateways observe the drain
	// and stop routing here before connections start being refused.
	server.SetDraining(true)
	fmt.Fprintf(stdout, "pspd draining: healthz now 503, closing listener in %s\n", *drainGrace)
	if *drainGrace > 0 {
		select {
		case <-time.After(*drainGrace):
		case err := <-serveErr:
			return fmt.Errorf("pspd: serve: %w", err)
		}
	}

	fmt.Fprintf(stdout, "pspd shutting down, draining for up to %s\n", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("pspd: shutdown: %w", err)
	}
	// A clean Shutdown makes Serve return ErrServerClosed; that is the
	// success path, not a fatal error.
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("pspd: serve: %w", err)
	}
	fmt.Fprintln(stdout, "pspd stopped cleanly")
	return nil
}
