package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"puppies"
	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
	"puppies/internal/psp"
)

// buildPspd compiles the real daemon binary into dir. The e2e crash tests
// exercise the actual process boundary (SIGKILL has no in-process
// equivalent), so they need a binary, not a goroutine running run().
func buildPspd(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "pspd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build pspd: %v\n%s", err, out)
	}
	return bin
}

// lineBuffer collects daemon stdout while letting the test scan it later.
type lineBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lineBuffer) add(line string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf.WriteString(line)
	b.buf.WriteByte('\n')
}

func (b *lineBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

type daemon struct {
	cmd  *exec.Cmd
	addr string
	out  *lineBuffer
}

func (d *daemon) base() string { return "http://" + d.addr }

// startPspd launches the built binary and waits for its listen line.
func startPspd(t *testing.T, bin string, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, out: &lineBuffer{}}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			d.out.add(line)
			if a, ok := strings.CutPrefix(line, "pspd listening on "); ok {
				select {
				case addrCh <- a:
				default:
				}
			}
		}
	}()
	select {
	case d.addr = <-addrCh:
	case <-time.After(15 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("pspd never reported its listen address; output:\n%s", d.out)
	}
	return d
}

// kill SIGKILLs the daemon and reaps it — the crash under test.
func (d *daemon) kill(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = d.cmd.Wait() // expected to report the kill
}

func (d *daemon) stop(t *testing.T) {
	t.Helper()
	if d.cmd.ProcessState != nil {
		return
	}
	d.kill(t)
}

// protectedImage builds a distinct source image, protects a region, and
// returns the protected artifact plus its pre-crash lossless recovery —
// the byte string the Lemma III.1 path must still reproduce after restart.
type protectedImage struct {
	prot      *puppies.Protected
	recovered []byte
}

func makeProtected(t *testing.T, seed int) *protectedImage {
	t.Helper()
	const w, h = 64, 64
	img, err := imgplane.New(w, h, 3)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			img.Planes[0].Pix[i] = float32(100 + 80*math.Sin(float64(x+seed*7)/5))
			img.Planes[1].Pix[i] = float32(128 + 30*math.Cos(float64(y+seed*3)/9))
			img.Planes[2].Pix[i] = 128
		}
	}
	jimg, err := jpegc.FromPlanar(img, jpegc.Options{Quality: 85})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := jimg.Encode(&buf, jpegc.EncodeOptions{}); err != nil {
		t.Fatal(err)
	}
	prot, err := puppies.ProtectJPEG(buf.Bytes(), puppies.ProtectOptions{
		Regions: []puppies.Rect{{X: 8, Y: 8, W: 32, H: 32}},
	})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := puppies.UnprotectJPEG(prot.JPEG, prot.Params, prot.Keys)
	if err != nil {
		t.Fatal(err)
	}
	return &protectedImage{prot: prot, recovered: recovered}
}

func uploadProtected(base string, p *protectedImage) (string, error) {
	body, err := json.Marshal(psp.UploadRequest{Image: p.prot.JPEG, Params: p.prot.Params})
	if err != nil {
		return "", err
	}
	resp, err := http.Post(base+"/v1/images", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("upload: HTTP %d: %s", resp.StatusCode, raw)
	}
	var up psp.UploadResponse
	if err := json.Unmarshal(raw, &up); err != nil {
		return "", err
	}
	return up.ID, nil
}

func httpGetBytes(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func listIDs(t *testing.T, base string) []string {
	t.Helper()
	code, raw := httpGetBytes(t, base+"/v1/images")
	if code != http.StatusOK {
		t.Fatalf("list: HTTP %d: %s", code, raw)
	}
	var lr psp.ListResponse
	if err := json.Unmarshal(raw, &lr); err != nil {
		t.Fatal(err)
	}
	return lr.IDs
}

// TestCrashRecoveryEndToEnd is the full-stack durability acceptance: a real
// pspd process with -data-dir takes N acknowledged uploads, is SIGKILLed
// while upload N+1 is in flight, and is restarted on the same directory.
// Every acknowledged image must come back byte-identical with bit-exact ROI
// recovery; the unacknowledged upload must be absent or, if its record
// completed before the kill landed, byte-identical too — never truncated,
// never silently wrong.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and SIGKILLs a real daemon; skipped in -short")
	}
	work := t.TempDir()
	bin := buildPspd(t, work)
	dataDir := filepath.Join(work, "data")

	const n = 3
	imgs := make([]*protectedImage, n+1)
	for i := range imgs {
		imgs[i] = makeProtected(t, i)
	}

	d := startPspd(t, bin, "-data-dir", dataDir)
	defer d.stop(t)

	acked := make([]string, n)
	for i := 0; i < n; i++ {
		id, err := uploadProtected(d.base(), imgs[i])
		if err != nil {
			t.Fatal(err)
		}
		acked[i] = id
	}

	// Fire upload N+1 and SIGKILL the daemon while it is (likely) in
	// flight. Whether the kill lands before, during, or after the write is
	// timing-dependent; every outcome is legal except a corrupt ack.
	doomed := make(chan string, 1)
	go func() {
		id, err := uploadProtected(d.base(), imgs[n])
		if err != nil {
			doomed <- ""
			return
		}
		doomed <- id
	}()
	time.Sleep(2 * time.Millisecond)
	d.kill(t)
	doomedID := <-doomed

	// Restart on the same data directory.
	d2 := startPspd(t, bin, "-data-dir", dataDir)
	defer d2.stop(t)
	if !strings.Contains(d2.out.String(), "pspd recovery:") {
		t.Errorf("restarted daemon printed no recovery report; output:\n%s", d2.out)
	}

	ids := listIDs(t, d2.base())
	have := make(map[string]bool, len(ids))
	for _, id := range ids {
		have[id] = true
	}
	for i, id := range acked {
		if !have[id] {
			t.Fatalf("acknowledged image %d (%s) lost across crash; listed: %v", i, id, ids)
		}
	}

	for i, id := range acked {
		code, jpegBytes := httpGetBytes(t, d2.base()+"/v1/images/"+id)
		if code != http.StatusOK {
			t.Fatalf("image %d: HTTP %d after restart", i, code)
		}
		if !bytes.Equal(jpegBytes, imgs[i].prot.JPEG) {
			t.Fatalf("image %d: stored JPEG differs from upload after crash recovery", i)
		}
		code, params := httpGetBytes(t, d2.base()+"/v1/images/"+id+"/params")
		if code != http.StatusOK {
			t.Fatalf("image %d params: HTTP %d after restart", i, code)
		}
		if !bytes.Equal(params, imgs[i].prot.Params) {
			t.Fatalf("image %d: stored params differ after crash recovery", i)
		}
		// Lemma III.1 end to end: recovery from the restarted store's bytes
		// is bit-identical to recovery computed before the crash.
		rec, err := puppies.UnprotectJPEG(jpegBytes, params, imgs[i].prot.Keys)
		if err != nil {
			t.Fatalf("image %d: ROI recovery after restart: %v", i, err)
		}
		if !bytes.Equal(rec, imgs[i].recovered) {
			t.Fatalf("image %d: ROI recovery not bit-exact after crash", i)
		}
	}

	// The doomed upload: if it was acknowledged before the kill landed, it
	// must have survived completely (checksummed envelope, atomic rename);
	// an unacknowledged record may appear only if it is byte-perfect.
	extra := 0
	ackedSet := make(map[string]bool, n)
	for _, id := range acked {
		ackedSet[id] = true
	}
	for _, id := range ids {
		if ackedSet[id] {
			continue
		}
		extra++
		code, jpegBytes := httpGetBytes(t, d2.base()+"/v1/images/"+id)
		if code != http.StatusOK {
			t.Fatalf("surviving extra record %s unreadable: HTTP %d", id, code)
		}
		if !bytes.Equal(jpegBytes, imgs[n].prot.JPEG) {
			t.Fatalf("extra record %s is not byte-identical to the in-flight upload", id)
		}
	}
	if doomedID != "" && !have[doomedID] {
		t.Fatalf("upload %s was acknowledged before the crash but lost", doomedID)
	}
	if extra > 1 {
		t.Fatalf("%d extra records appeared from one in-flight upload", extra)
	}
}

// TestCorruptRecordQuarantinedAcrossRestart flips one byte of a stored
// record on disk between daemon runs and asserts the restarted daemon
// quarantines it (reported in the recovery log, file preserved, image no
// longer served) while the untouched record is still byte-identical.
func TestCorruptRecordQuarantinedAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real daemon; skipped in -short")
	}
	work := t.TempDir()
	bin := buildPspd(t, work)
	dataDir := filepath.Join(work, "data")

	good := makeProtected(t, 10)
	victim := makeProtected(t, 11)

	d := startPspd(t, bin, "-data-dir", dataDir)
	goodID, err := uploadProtected(d.base(), good)
	if err != nil {
		t.Fatal(err)
	}
	victimID, err := uploadProtected(d.base(), victim)
	if err != nil {
		t.Fatal(err)
	}
	d.kill(t)

	victimPath := filepath.Join(dataDir, "records", victimID+".psp")
	raw, err := os.ReadFile(victimPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(victimPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := startPspd(t, bin, "-data-dir", dataDir)
	defer d2.stop(t)
	out := d2.out.String()
	if !strings.Contains(out, "pspd quarantined") {
		t.Errorf("no quarantine line in recovery log:\n%s", out)
	}

	ids := listIDs(t, d2.base())
	if len(ids) != 1 || ids[0] != goodID {
		t.Fatalf("post-corruption listing = %v, want only %s", ids, goodID)
	}
	code, _ := httpGetBytes(t, d2.base()+"/v1/images/"+victimID)
	if code != http.StatusNotFound {
		t.Errorf("corrupt image served with HTTP %d, want 404", code)
	}
	code, jpegBytes := httpGetBytes(t, d2.base()+"/v1/images/"+goodID)
	if code != http.StatusOK || !bytes.Equal(jpegBytes, good.prot.JPEG) {
		t.Fatalf("intact record damaged by neighbour corruption (HTTP %d)", code)
	}

	// Quarantine preserves the damaged bytes for forensics — never deletes.
	qdir := filepath.Join(dataDir, "quarantine")
	entries, err := os.ReadDir(qdir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("quarantine dir empty or unreadable: %v", err)
	}
}
