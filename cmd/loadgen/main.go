// Command loadgen replays seeded Zipf traffic mixes against a live PSP
// (single pspd or a cluster gateway), optionally driving a chaos schedule
// against an in-process selfhosted cluster, and writes benchfmt-compatible
// JSON so `make load-gate` can enforce SLOs in CI.
//
// Two targeting modes:
//
//	loadgen -target http://localhost:8080 -duration 30s -qps 200
//	loadgen -selfhost 3 -duration 8s -workers 12 -chaos gate
//
// -selfhost boots N shards plus a gateway on loopback listeners inside
// this process, which is what lets -chaos inject 503 bursts, latency
// spikes, partitions, and shard kills without root or containers. -chaos
// takes the builtin "gate" schedule or a JSON file (see DESIGN.md §15).
//
// Gates (all optional, all exit non-zero on violation):
//
//	-max-unexpected N         at most N unexpected client-visible failures
//	-require-sheds            at least one 429 shed must have occurred
//	-require-breaker-cycle    some breaker must have tripped AND recovered
//
// -o writes benchfmt rows (with synthetic LoadSLOHotGet/LoadSLOThumbnail
// rows holding the -slo-hotget-p99 and -slo-thumb-p99 ceilings) so
// `benchfmt -new rows.json -ratio ...` gates
// absolute SLOs with the existing ratio machinery.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"puppies/internal/loadgen"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target   = fs.String("target", "", "base URL of a running pspd or gateway")
		selfhost = fs.Int("selfhost", 0, "boot an in-process cluster with this many shards instead of -target")
		seed     = fs.Int64("seed", 42, "seed for corpus, mix, Zipf ranks, and chaos")
		duration = fs.Duration("duration", 5*time.Second, "how long to drive load")
		workers  = fs.Int("workers", 8, "closed-loop concurrency")
		qps      = fs.Float64("qps", 0, "open-loop arrival rate (0 = closed loop)")
		mixFlag  = fs.String("mix", "", "op mix, e.g. hotget=50,coldget=15,upload=10,batch=5,recover=15,search=5")
		corpus   = fs.Int("corpus", 24, "distinct images uploaded before the run")
		zipfS    = fs.Float64("zipf", 1.2, "Zipf skew for hot GET ranks")
		chaos    = fs.String("chaos", "", `chaos schedule: "gate" for the builtin, or a JSON file (needs -selfhost)`)

		sloHotP99     = fs.Duration("slo-hotget-p99", 0, "hot GET p99 ceiling encoded into the benchfmt SLO row")
		sloThumbP99   = fs.Duration("slo-thumb-p99", 0, "1/8-scale thumbnail GET p99 ceiling encoded into the benchfmt SLO row")
		maxUnexpected = fs.Int("max-unexpected", -1, "fail if unexpected client-visible failures exceed this (-1 = no gate)")
		requireSheds  = fs.Bool("require-sheds", false, "fail unless 429 shedding was exercised")
		requireCycle  = fs.Bool("require-breaker-cycle", false, "fail unless a breaker tripped AND recovered (selfhost only)")

		gwMaxInflight = fs.Int("gw-max-inflight", 0, "selfhost gateway admission capacity (0 = default)")
		gwAdmitWait   = fs.Duration("gw-admit-wait", 0, "selfhost gateway admission queue wait bound")
		gwAdmitQueue  = fs.Int("gw-admit-queue", 0, "selfhost gateway admission queue length")
		shMaxInflight = fs.Int("shard-max-inflight", 0, "selfhost per-shard admission capacity (0 = default)")

		outPath    = fs.String("o", "", "write benchfmt JSON rows here")
		reportPath = fs.String("report", "", "write the full report JSON here")
		verbose    = fs.Bool("v", false, "narrate progress and chaos events")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*target == "") == (*selfhost == 0) {
		fmt.Fprintln(stderr, "loadgen: exactly one of -target or -selfhost is required")
		return 2
	}
	if *chaos != "" && *selfhost == 0 {
		fmt.Fprintln(stderr, "loadgen: -chaos needs -selfhost (external targets cannot be faulted from here)")
		return 2
	}

	mix := loadgen.DefaultMix()
	if *mixFlag != "" {
		var err error
		if mix, err = loadgen.ParseMix(*mixFlag); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) }
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	baseURL := *target
	var cluster *loadgen.SelfCluster
	if *selfhost > 0 {
		var err error
		cluster, err = loadgen.StartSelfCluster(loadgen.SelfConfig{
			Shards:             *selfhost,
			Seed:               *seed,
			GatewayMaxInflight: *gwMaxInflight,
			GatewayAdmitWait:   *gwAdmitWait,
			GatewayAdmitQueue:  *gwAdmitQueue,
			ShardMaxInflight:   *shMaxInflight,
		})
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer cluster.Close()
		baseURL = cluster.URL
		logf("selfhost cluster up at %s (%d shards)", baseURL, *selfhost)
	}

	var schedule *loadgen.Schedule
	switch {
	case *chaos == "":
	case *chaos == "gate":
		schedule = loadgen.GateSchedule(*duration)
	default:
		data, err := os.ReadFile(*chaos)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		schedule = &loadgen.Schedule{}
		if err := json.Unmarshal(data, schedule); err != nil {
			fmt.Fprintf(stderr, "loadgen: parse %s: %v\n", *chaos, err)
			return 2
		}
		if err := schedule.Validate(cluster.Shards()); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	runner, err := loadgen.New(loadgen.Config{
		BaseURL:  baseURL,
		Seed:     *seed,
		Duration: *duration,
		Workers:  *workers,
		QPS:      *qps,
		Mix:      mix,
		Corpus:   *corpus,
		ZipfS:    *zipfS,
		Logf:     logf,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if err := runner.Setup(ctx); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	chaosDone := make(chan error, 1)
	if schedule != nil {
		go func() { chaosDone <- loadgen.RunSchedule(ctx, schedule, cluster, logf) }()
	} else {
		chaosDone <- nil
	}

	rep, err := runner.Run(ctx)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if err := <-chaosDone; err != nil {
		fmt.Fprintf(stderr, "loadgen: chaos schedule: %v\n", err)
		return 1
	}
	if cluster != nil {
		rep.FillCluster(cluster.Gateway())
	}

	rep.Summary(stdout)
	if *reportPath != "" {
		if err := writeJSON(*reportPath, rep); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		err = rep.WriteBenchJSON(f, *sloHotP99, *sloThumbP99)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	// SLO gates: every violation is reported before the non-zero exit so a
	// CI log shows the whole picture, not just the first failure.
	failed := false
	if *maxUnexpected >= 0 && rep.Unexpected > uint64(*maxUnexpected) {
		fmt.Fprintf(stderr, "loadgen: GATE: %d unexpected failures (max %d)\n", rep.Unexpected, *maxUnexpected)
		failed = true
	}
	if *requireSheds && rep.Sheds() == 0 {
		fmt.Fprintln(stderr, "loadgen: GATE: no 429 shedding observed; overload protection was not exercised")
		failed = true
	}
	if *requireCycle {
		if rep.Cluster == nil {
			fmt.Fprintln(stderr, "loadgen: GATE: -require-breaker-cycle needs -selfhost")
			failed = true
		} else if rep.Cluster.BreakerOpens == 0 || rep.Cluster.BreakerRecoveries == 0 || rep.Cluster.OpenBreakers != 0 {
			fmt.Fprintf(stderr, "loadgen: GATE: breaker lifecycle incomplete: opens=%d recoveries=%d stillOpen=%d\n",
				rep.Cluster.BreakerOpens, rep.Cluster.BreakerRecoveries, rep.Cluster.OpenBreakers)
			failed = true
		}
	}
	if failed {
		return 1
	}
	return 0
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
