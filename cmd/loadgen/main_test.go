package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSelfhostWritesBenchRows(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "rows.json")
	rep := filepath.Join(dir, "report.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-selfhost", "3", "-seed", "1", "-duration", "400ms", "-workers", "2",
		"-corpus", "3", "-slo-hotget-p99", "30s", "-max-unexpected", "0",
		"-o", out, "-report", rep,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rows []struct {
		Name       string             `json:"name"`
		Iterations int64              `json:"iterations"`
		NsPerOp    float64            `json:"ns_per_op"`
		Metrics    map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatal(err)
	}
	byName := map[string]map[string]float64{}
	for _, r := range rows {
		byName[r.Name] = r.Metrics
	}
	if _, ok := byName["LoadSLOHotGet"]; !ok {
		t.Fatalf("rows missing SLO row: %s", data)
	}
	if m, ok := byName["LoadOverall"]; !ok || m["ok-per-op"] != 1 {
		t.Fatalf("overall row bad: %v", byName)
	}
	if _, err := os.Stat(rep); err != nil {
		t.Fatalf("full report not written: %v", err)
	}
	if !strings.Contains(stdout.String(), "loadgen: seed=1") {
		t.Fatalf("summary missing from stdout: %s", stdout.String())
	}
}

func TestRunGatesFailWithoutSheds(t *testing.T) {
	// An uncontended run cannot shed; -require-sheds must turn that into a
	// non-zero exit rather than silently passing an unexercised gate.
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-selfhost", "1", "-seed", "2", "-duration", "200ms", "-workers", "1",
		"-corpus", "2", "-require-sheds",
	}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("want gate failure, got exit 0; stderr: %s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "no 429 shedding") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{}, // neither target nor selfhost
		{"-target", "http://x", "-selfhost", "3"}, // both
		{"-target", "http://x", "-chaos", "gate"}, // chaos without selfhost
		{"-selfhost", "3", "-mix", "bogus=1"},     // bad mix
	}
	for i, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Fatalf("case %d (%v): exit %d, want 2; stderr: %s", i, args, code, stderr.String())
		}
	}
}

func TestRunLoadsChaosScheduleFromFile(t *testing.T) {
	dir := t.TempDir()
	sched := filepath.Join(dir, "chaos.json")
	if err := os.WriteFile(sched, []byte(`{"events":[
		{"at":"50ms","kind":"burst503","shard":0,"rate":1.0,"for":"100ms"}
	]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-selfhost", "3", "-seed", "3", "-duration", "400ms", "-workers", "2",
		"-corpus", "2", "-chaos", sched, "-max-unexpected", "0",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}

	// A schedule referencing a shard that does not exist must be refused.
	if err := os.WriteFile(sched, []byte(`{"events":[
		{"at":"50ms","kind":"partition","shard":9,"for":"100ms"}
	]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code = run([]string{
		"-selfhost", "3", "-seed", "3", "-duration", "200ms", "-chaos", sched,
	}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("invalid schedule: exit %d, want 2; stderr: %s", code, stderr.String())
	}
}
