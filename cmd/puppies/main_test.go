package main

import (
	"image"
	"image/color"
	"image/jpeg"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTestJPEG(t *testing.T, path string) {
	t.Helper()
	img := image.NewRGBA(image.Rect(0, 0, 96, 96))
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			img.SetRGBA(x, y, color.RGBA{
				R: uint8(60 + (x*5+y*7)%140),
				G: uint8(80 + (x*3+y)%120),
				B: uint8(50 + (x+y*2)%100),
				A: 255,
			})
		}
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := jpeg.Encode(f, img, &jpeg.Options{Quality: 90}); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndCLI(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "photo.jpg")
	writeTestJPEG(t, in)

	out := filepath.Join(dir, "prot.jpg")
	params := filepath.Join(dir, "prot.json")
	keysFile := filepath.Join(dir, "prot.key")
	if err := run([]string{
		"protect", "-in", in, "-out", out, "-params", params, "-keys", keysFile,
		"-region", "16,16,48,48",
	}); err != nil {
		t.Fatalf("protect: %v", err)
	}
	for _, p := range []string{out, params, keysFile} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Fatalf("output %s missing or empty: %v", p, err)
		}
	}

	rec := filepath.Join(dir, "rec.png")
	if err := run([]string{
		"unprotect", "-in", out, "-params", params, "-keys", keysFile, "-out", rec,
	}); err != nil {
		t.Fatalf("unprotect: %v", err)
	}
	if st, err := os.Stat(rec); err != nil || st.Size() == 0 {
		t.Fatalf("recovered image missing: %v", err)
	}

	// Unprotect without keys also succeeds (viewer mode).
	blocked := filepath.Join(dir, "blocked.png")
	if err := run([]string{
		"unprotect", "-in", out, "-params", params, "-out", blocked,
	}); err != nil {
		t.Fatalf("viewer unprotect: %v", err)
	}
}

func TestKeygenAndReadKeys(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "k.key")
	if err := run([]string{"keygen", "-out", path, "-n", "3"}); err != nil {
		t.Fatal(err)
	}
	pairs, err := readKeys(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 3 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	ids := map[string]bool{}
	for _, p := range pairs {
		if err := p.Validate(); err != nil {
			t.Error(err)
		}
		if ids[p.ID] {
			t.Error("duplicate key id")
		}
		ids[p.ID] = true
	}
}

func TestDetectCLI(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "photo.jpg")
	writeTestJPEG(t, in)
	if err := run([]string{"detect", "-in", in}); err != nil {
		t.Fatal(err)
	}
}

func TestCLIErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("empty args accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"protect"}); err == nil {
		t.Error("protect without -in accepted")
	}
	if err := run([]string{"unprotect", "-in", "nope.jpg"}); err == nil {
		t.Error("unprotect without -params accepted")
	}
	if err := run([]string{"detect", "-in", "/does/not/exist.jpg"}); err == nil {
		t.Error("missing input accepted")
	}
	dir := t.TempDir()
	in := filepath.Join(dir, "photo.jpg")
	writeTestJPEG(t, in)
	err := run([]string{"protect", "-in", in, "-region", "1,2,3"})
	if err == nil || !strings.Contains(err.Error(), "x,y,w,h") {
		t.Errorf("malformed region: %v", err)
	}
}

func TestReadKeysRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.key")
	if err := os.WriteFile(path, []byte("short"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := readKeys(path); err == nil {
		t.Error("garbage keys file accepted")
	}
}

func TestLosslessProtectCLI(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "photo.jpg")
	writeTestJPEG(t, in) // stdlib 4:2:0 output exercises the subsampled import path

	out := filepath.Join(dir, "prot.jpg")
	params := filepath.Join(dir, "prot.json")
	keysFile := filepath.Join(dir, "prot.key")
	if err := run([]string{
		"protect", "-lossless", "-in", in, "-out", out, "-params", params,
		"-keys", keysFile, "-region", "16,16,48,48",
	}); err != nil {
		t.Fatalf("lossless protect: %v", err)
	}
	rec := filepath.Join(dir, "rec.png")
	if err := run([]string{
		"unprotect", "-in", out, "-params", params, "-keys", keysFile, "-out", rec,
	}); err != nil {
		t.Fatalf("unprotect: %v", err)
	}
	// Lossless mode requires explicit regions.
	if err := run([]string{"protect", "-lossless", "-in", in}); err == nil {
		t.Error("lossless protect without regions accepted")
	}
}
