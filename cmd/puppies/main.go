// Command puppies is the command-line interface to the PuPPIeS library:
//
//	puppies keygen  -out alice.key
//	puppies detect  -in photo.jpg
//	puppies protect -in photo.jpg -out prot.jpg -params prot.json \
//	                -keys keys.bin [-region x,y,w,h ...] [-variant puppies-z]
//	                [-lossless]   # perturb the input's own coefficients
//	puppies unprotect -in prot.jpg -params prot.json -keys keys.bin -out rec.png
//
// Protected JPEGs are ordinary baseline JPEGs; params files are the public
// parameter JSON; keys files hold the serialized private matrix pairs
// (keep them secret).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"image"
	"image/jpeg"
	"image/png"
	"os"
	"strconv"
	"strings"

	"puppies"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "puppies:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: puppies <keygen|detect|protect|unprotect> [flags]")
	}
	switch args[0] {
	case "keygen":
		return cmdKeygen(args[1:])
	case "detect":
		return cmdDetect(args[1:])
	case "protect":
		return cmdProtect(args[1:])
	case "unprotect":
		return cmdUnprotect(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func loadImage(path string) (image.Image, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	img, _, err := image.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("decode %s: %w", path, err)
	}
	return img, nil
}

func init() {
	// Register decoders for loadImage.
	image.RegisterFormat("jpeg", "\xff\xd8", jpeg.Decode, jpeg.DecodeConfig)
	image.RegisterFormat("png", "\x89PNG", png.Decode, png.DecodeConfig)
}

// keysFile serializes pairs by concatenating their binary forms.
func writeKeys(path string, pairs []*puppies.KeyPair) error {
	var buf bytes.Buffer
	for _, p := range pairs {
		b, err := p.MarshalBinary()
		if err != nil {
			return err
		}
		buf.Write(b)
	}
	return os.WriteFile(path, buf.Bytes(), 0o600)
}

func readKeys(path string) ([]*puppies.KeyPair, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	const wire = 16 + 4*64
	if len(data)%wire != 0 {
		return nil, fmt.Errorf("%s: not a keys file (length %d)", path, len(data))
	}
	var pairs []*puppies.KeyPair
	for off := 0; off < len(data); off += wire {
		var p puppies.KeyPair
		if err := p.UnmarshalBinary(data[off : off+wire]); err != nil {
			return nil, err
		}
		pairs = append(pairs, &p)
	}
	return pairs, nil
}

func cmdKeygen(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ContinueOnError)
	out := fs.String("out", "puppies.key", "output keys file")
	n := fs.Int("n", 1, "number of key pairs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var pairs []*puppies.KeyPair
	for i := 0; i < *n; i++ {
		p, err := puppies.GenerateKeyPair()
		if err != nil {
			return err
		}
		pairs = append(pairs, p)
		fmt.Println("generated key pair", p.ID)
	}
	return writeKeys(*out, pairs)
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ContinueOnError)
	in := fs.String("in", "", "input image (jpeg or png)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	img, err := loadImage(*in)
	if err != nil {
		return err
	}
	regions := puppies.DetectRegions(img)
	if len(regions) == 0 {
		fmt.Println("no sensitive regions detected")
		return nil
	}
	for _, r := range regions {
		fmt.Printf("region %d,%d,%d,%d\n", r.X, r.Y, r.W, r.H)
	}
	return nil
}

func parseRegions(specs []string) ([]puppies.Rect, error) {
	var out []puppies.Rect
	for _, s := range specs {
		parts := strings.Split(s, ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("region %q: want x,y,w,h", s)
		}
		var vals [4]int
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return nil, fmt.Errorf("region %q: %w", s, err)
			}
			vals[i] = v
		}
		out = append(out, puppies.Rect{X: vals[0], Y: vals[1], W: vals[2], H: vals[3]})
	}
	return out, nil
}

type regionFlags []string

// String implements flag.Value.
func (r *regionFlags) String() string { return strings.Join(*r, ";") }

// Set implements flag.Value by accumulating repeated -region flags.
func (r *regionFlags) Set(v string) error { *r = append(*r, v); return nil }

func cmdProtect(args []string) error {
	fs := flag.NewFlagSet("protect", flag.ContinueOnError)
	in := fs.String("in", "", "input image")
	out := fs.String("out", "protected.jpg", "output protected JPEG")
	params := fs.String("params", "protected.json", "output public parameters")
	keysOut := fs.String("keys", "protected.key", "output private keys file")
	variant := fs.String("variant", string(puppies.VariantZ), "scheme variant (puppies-n/-b/-c/-z)")
	level := fs.String("level", string(puppies.LevelMedium), "privacy level (low/medium/high)")
	quality := fs.Int("quality", 0, "JPEG quality (0 = default 75)")
	transformSupport := fs.Bool("transform-support", false, "emit extra params for pixel-transform recovery")
	lossless := fs.Bool("lossless", false, "protect the input JPEG's coefficients directly (no pixel re-encode)")
	var regions regionFlags
	fs.Var(&regions, "region", "x,y,w,h region to protect (repeatable; omit to auto-detect)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	rects, err := parseRegions(regions)
	if err != nil {
		return err
	}
	var rectsOpt []puppies.Rect
	if len(rects) > 0 {
		rectsOpt = rects
	}
	opts := puppies.ProtectOptions{
		Variant:          puppies.Variant(*variant),
		Level:            puppies.PrivacyLevel(*level),
		Regions:          rectsOpt,
		Quality:          *quality,
		TransformSupport: *transformSupport,
	}
	var prot *puppies.Protected
	if *lossless {
		data, err := os.ReadFile(*in)
		if err != nil {
			return err
		}
		if prot, err = puppies.ProtectJPEG(data, opts); err != nil {
			return err
		}
	} else {
		img, err := loadImage(*in)
		if err != nil {
			return err
		}
		if prot, err = puppies.Protect(img, opts); err != nil {
			return err
		}
	}
	if err := os.WriteFile(*out, prot.JPEG, 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(*params, prot.Params, 0o644); err != nil {
		return err
	}
	if err := writeKeys(*keysOut, prot.Keys); err != nil {
		return err
	}
	for i, r := range prot.Regions {
		fmt.Printf("protected region %d: %d,%d,%d,%d key %s\n", i, r.X, r.Y, r.W, r.H, prot.Keys[i].ID)
	}
	fmt.Printf("wrote %s (%d bytes), %s, %s\n", *out, len(prot.JPEG), *params, *keysOut)
	return nil
}

func cmdUnprotect(args []string) error {
	fs := flag.NewFlagSet("unprotect", flag.ContinueOnError)
	in := fs.String("in", "", "protected JPEG")
	params := fs.String("params", "", "public parameters JSON")
	keysIn := fs.String("keys", "", "keys file (omit to view the protected image)")
	out := fs.String("out", "recovered.png", "output PNG")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *params == "" {
		return fmt.Errorf("-in and -params are required")
	}
	jpegData, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	paramData, err := os.ReadFile(*params)
	if err != nil {
		return err
	}
	var pairs []*puppies.KeyPair
	if *keysIn != "" {
		if pairs, err = readKeys(*keysIn); err != nil {
			return err
		}
	}
	img, err := puppies.Unprotect(jpegData, paramData, pairs)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := png.Encode(f, img); err != nil {
		return err
	}
	fmt.Printf("recovered %d regions' worth of image into %s\n", len(pairs), *out)
	return nil
}
