package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"puppies/internal/cluster"
	"puppies/internal/faults"
	"puppies/internal/psp"
)

// buildPspd compiles the real shard daemon. The e2e test exercises the
// actual process boundary — SIGKILL has no in-process equivalent.
func buildPspd(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "pspd")
	cmd := exec.Command("go", "build", "-o", bin, "puppies/cmd/pspd")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build pspd: %v\n%s", err, out)
	}
	return bin
}

type shardProc struct {
	cmd  *exec.Cmd
	addr string
}

func (s *shardProc) url() string  { return "http://" + s.addr }
func (s *shardProc) host() string { return s.addr }

// startShard launches a pspd on addr ("" picks a free port) with durable
// storage in dataDir, waiting for its listen line.
func startShard(t *testing.T, bin, addr, dataDir string) *shardProc {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	cmd := exec.Command(bin,
		"-addr", addr,
		"-data-dir", dataDir,
		"-drain", "2s",
		"-drain-grace", "50ms",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sp := &shardProc{cmd: cmd}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "pspd listening on "); ok {
				select {
				case addrCh <- a:
				default:
				}
			}
		}
	}()
	select {
	case sp.addr = <-addrCh:
	case <-time.After(15 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("pspd never reported its listen address")
	}
	t.Cleanup(func() {
		if sp.cmd.ProcessState == nil {
			_ = sp.cmd.Process.Kill()
			_, _ = sp.cmd.Process.Wait()
		}
	})
	return sp
}

// kill SIGKILLs the shard — the crash under test, not a graceful stop.
func (s *shardProc) kill(t *testing.T) {
	t.Helper()
	if err := s.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = s.cmd.Process.Wait()
}

// gwUpload uploads jpeg through the gateway under key; returns the image ID.
func gwUpload(t *testing.T, base string, jpeg []byte, key string) string {
	t.Helper()
	body, err := json.Marshal(psp.UploadRequest{Image: jpeg})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/images", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", key)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload %s: HTTP %d: %s", key, resp.StatusCode, raw)
	}
	var up psp.UploadResponse
	if err := json.Unmarshal(raw, &up); err != nil {
		t.Fatal(err)
	}
	return up.ID
}

func directGet(url string) (int, []byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

// TestClusterSurvivesShardCrashAndPartition is the tentpole e2e: a real
// 3-shard cluster behind the gateway, one shard SIGKILLed mid-traffic and a
// second link asymmetrically partitioned, with zero failed client requests
// throughout — and after restart + repair the killed shard holds
// byte-identical replicas of every image, including those uploaded while it
// was down.
func TestClusterSurvivesShardCrashAndPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e cluster test in -short mode")
	}
	dir := t.TempDir()
	bin := buildPspd(t, dir)

	var procs []*shardProc
	var urls []string
	for i := 0; i < 3; i++ {
		sp := startShard(t, bin, "", filepath.Join(dir, fmt.Sprintf("shard%d", i)))
		procs = append(procs, sp)
		urls = append(urls, sp.url())
	}

	part := faults.NewPartition(42)
	gw, err := cluster.New(cluster.Config{
		Shards:          urls,
		Replicas:        3,
		WriteQuorum:     2,
		Transport:       part.Transport(nil),
		ShardTimeout:    2 * time.Second,
		HedgeDelay:      50 * time.Millisecond,
		FailThreshold:   2,
		BreakerCooldown: 100 * time.Millisecond,
		ProbeInterval:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	probeCtx, stopProbes := context.WithCancel(context.Background())
	defer stopProbes()
	gw.Start(probeCtx)
	gwSrv := httptest.NewServer(gw.Handler())
	defer gwSrv.Close()

	// Phase 1: upload set S1 while everything is healthy and wait until all
	// three replicas hold each image.
	canonical := map[string][]byte{}
	var s1 []string
	for i := 0; i < 3; i++ {
		jpeg := testJPEG(t)
		id := gwUpload(t, gwSrv.URL, jpeg, fmt.Sprintf("e2e-s1-%d", i))
		canonical[id] = jpeg
		s1 = append(s1, id)
	}
	waitReplicated := func(ids []string, onShards []string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			all := true
			for _, id := range ids {
				for _, u := range onShards {
					status, body, err := directGet(u + "/v1/images/" + id)
					if err != nil || status != http.StatusOK || !bytes.Equal(body, canonical[id]) {
						all = false
					}
				}
			}
			if all {
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
		t.Fatal("replication did not complete")
	}
	waitReplicated(s1, urls)

	// Phase 2: background client traffic through the gateway via the typed
	// psp.Client — every request across the whole fault sequence must
	// succeed.
	client := &psp.Client{BaseURL: gwSrv.URL}
	trafficCtx, stopTraffic := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var reqTotal, reqFailed atomic.Int64
	var firstErr atomic.Value
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; trafficCtx.Err() == nil; i++ {
				id := s1[(w+i)%len(s1)]
				if _, err := client.FetchImage(trafficCtx, id); err != nil {
					if trafficCtx.Err() != nil {
						return // shutdown race, not a served failure
					}
					reqFailed.Add(1)
					firstErr.CompareAndSwap(nil, err)
				}
				reqTotal.Add(1)
				time.Sleep(5 * time.Millisecond)
			}
		}(w)
	}
	time.Sleep(150 * time.Millisecond) // let traffic establish

	// Phase 3: SIGKILL shard 0 mid-traffic.
	procs[0].kill(t)

	// Uploads keep working at quorum 2/3 while shard 0 is down.
	var s2 []string
	for i := 0; i < 3; i++ {
		jpeg := testJPEG(t)
		id := gwUpload(t, gwSrv.URL, jpeg, fmt.Sprintf("e2e-s2-%d", i))
		canonical[id] = jpeg
		s2 = append(s2, id)
	}
	waitReplicated(s2, urls[1:])

	// Wait for the health probes to eject the dead shard.
	deadline := time.Now().Add(5 * time.Second)
	for gw.Stats().OpenBreakers < 1 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if gw.Stats().OpenBreakers < 1 {
		t.Fatal("dead shard was never ejected by health probes")
	}

	// Phase 4: asymmetric partition on shard 1 — requests are delivered but
	// replies drop. Reads must fail over to shard 2 without client errors.
	part.Isolate(procs[1].host(), faults.LinkDropReplies)
	for i, id := range append(append([]string{}, s1...), s2...) {
		img, err := client.FetchImage(context.Background(), id)
		if err != nil || img == nil {
			t.Fatalf("GET %d during asymmetric partition: %v", i, err)
		}
	}
	part.Heal(procs[1].host())

	// Phase 5: stop traffic; the client must have seen zero failures.
	stopTraffic()
	wg.Wait()
	if reqTotal.Load() == 0 {
		t.Fatal("background traffic made no requests")
	}
	if n := reqFailed.Load(); n != 0 {
		t.Fatalf("%d of %d client requests failed during the fault sequence; first: %v",
			n, reqTotal.Load(), firstErr.Load())
	}

	// Phase 6: restart the killed shard on its old address with its old
	// data dir, run the admin repair walk, and verify byte-identical
	// replicas of S1 ∪ S2 on the restarted shard.
	restarted := startShard(t, bin, procs[0].addr, filepath.Join(dir, "shard0"))
	if restarted.url() != urls[0] {
		t.Fatalf("restarted shard on %s, want original %s", restarted.url(), urls[0])
	}
	resp, err := http.Post(gwSrv.URL+"/v1/admin/repair", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repair walk: HTTP %d: %s", resp.StatusCode, raw)
	}
	var rep cluster.RepairReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("repair walk left %d replicas unrepaired: %+v", rep.Failed, rep)
	}
	for id, jpeg := range canonical {
		status, body, err := directGet(urls[0] + "/v1/images/" + id)
		if err != nil || status != http.StatusOK {
			t.Fatalf("restarted shard missing %s: status %d err %v", id, status, err)
		}
		if !bytes.Equal(body, jpeg) {
			t.Fatalf("restarted shard holds %d bytes for %s, not byte-identical to the %d canonical", len(body), id, len(jpeg))
		}
	}

	// The cluster-wide listing shows exactly S1 ∪ S2.
	lstatus, lbody, err := directGet(gwSrv.URL + "/v1/images")
	if err != nil || lstatus != http.StatusOK {
		t.Fatalf("merged list: status %d err %v", lstatus, err)
	}
	var lr psp.ListResponse
	if err := json.Unmarshal(lbody, &lr); err != nil {
		t.Fatal(err)
	}
	if len(lr.IDs) != len(canonical) {
		t.Fatalf("merged list has %d ids, want %d", len(lr.IDs), len(canonical))
	}

	// Phase 7: statz reflects the whole story.
	st := gw.Stats()
	if st.RingShards != 3 {
		t.Errorf("ringShards = %d, want 3", st.RingShards)
	}
	if st.Failovers == 0 {
		t.Error("no failovers recorded across a crash plus a partition")
	}
	if st.ReadRepairs < uint64(len(s2)) {
		t.Errorf("readRepairs = %d, want >= %d (S2 restored onto the crashed shard)", st.ReadRepairs, len(s2))
	}
	if st.Shards[urls[0]].BreakerOpens < 1 {
		t.Error("crashed shard's breaker never opened")
	}
	if st.UploadQuorumFailures != 0 {
		t.Errorf("uploadQuorumFailures = %d, want 0", st.UploadQuorumFailures)
	}
}
