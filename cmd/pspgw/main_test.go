package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"puppies/internal/cluster"
	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
	"puppies/internal/psp"
)

func testJPEG(t testing.TB) []byte {
	t.Helper()
	const w, h = 48, 48
	img, err := imgplane.New(w, h, 3)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			img.Planes[0].Pix[i] = float32(100 + 80*math.Sin(float64(x)/6)*math.Cos(float64(y)/8))
			img.Planes[1].Pix[i] = float32(128 + 25*math.Sin(float64(x+y)/9))
			img.Planes[2].Pix[i] = float32(128 + 25*math.Cos(float64(x-y)/7))
		}
	}
	jimg, err := jpegc.FromPlanar(img, jpegc.Options{Quality: 80})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := jimg.Encode(&buf, jpegc.EncodeOptions{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// startGateway boots run() over the given shard URLs and returns its base
// URL plus the error channel.
func startGateway(t *testing.T, ctx context.Context, out *bytes.Buffer, extraArgs []string, shards ...string) (string, chan error) {
	t.Helper()
	ready := make(chan string, 1)
	runErr := make(chan error, 1)
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-shards", strings.Join(shards, ","),
	}, extraArgs...)
	go func() { runErr <- run(ctx, args, out, ready) }()
	select {
	case addr := <-ready:
		return "http://" + addr, runErr
	case err := <-runErr:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("run never became ready")
	}
	return "", nil
}

func TestRunRequiresShards(t *testing.T) {
	err := run(context.Background(), []string{"-addr", "127.0.0.1:0"}, io.Discard, nil)
	if err == nil || !strings.Contains(err.Error(), "-shards") {
		t.Fatalf("run without -shards: %v, want usage error", err)
	}
}

// TestDaemonServesClusterAndStatz boots the real daemon over three
// in-process shards, drives uploads and reads through it with a plain
// psp-protocol client, and checks /v1/statz reports the cluster shape and
// per-shard counters (the satellite's statz wiring acceptance).
func TestDaemonServesClusterAndStatz(t *testing.T) {
	var shards []*httptest.Server
	var urls []string
	for i := 0; i < 3; i++ {
		s := httptest.NewServer(psp.NewServer().Handler())
		defer s.Close()
		shards = append(shards, s)
		urls = append(urls, s.URL)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out bytes.Buffer
	base, runErr := startGateway(t, ctx, &out, []string{
		"-replicas", "3", "-write-quorum", "2",
		"-probe-interval", "50ms",
	}, urls...)

	// Upload through the gateway.
	body, err := json.Marshal(map[string]any{
		"image": base64.StdEncoding.EncodeToString(testJPEG(t)),
	})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/images", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", "daemon-key-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: HTTP %d: %s", resp.StatusCode, raw)
	}
	var up psp.UploadResponse
	if err := json.Unmarshal(raw, &up); err != nil {
		t.Fatal(err)
	}

	// Read it back and list it.
	get, err := http.Get(base + "/v1/images/" + up.ID)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, get.Body)
	get.Body.Close()
	if get.StatusCode != http.StatusOK {
		t.Fatalf("read-back: HTTP %d", get.StatusCode)
	}

	// Crash one shard; the health probes must eject it and healthz must
	// degrade, while reads keep working.
	shards[0].Close()
	deadline := time.Now().Add(5 * time.Second)
	var st cluster.Statz
	for {
		sresp, err := http.Get(base + "/v1/statz")
		if err != nil {
			t.Fatal(err)
		}
		sraw, _ := io.ReadAll(sresp.Body)
		sresp.Body.Close()
		if sresp.StatusCode != http.StatusOK {
			t.Fatalf("statz: HTTP %d", sresp.StatusCode)
		}
		if err := json.Unmarshal(sraw, &st); err != nil {
			t.Fatalf("statz not JSON: %v\n%s", err, sraw)
		}
		if st.OpenBreakers >= 1 || !time.Now().Before(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.OpenBreakers < 1 {
		t.Fatalf("crashed shard never ejected; statz: %+v", st)
	}
	if st.RingShards != 3 || st.Replicas != 3 || st.WriteQuorum != 2 {
		t.Errorf("statz shape = ring %d R %d W %d, want 3/3/2", st.RingShards, st.Replicas, st.WriteQuorum)
	}
	if st.Uploads != 1 {
		t.Errorf("statz uploads = %d, want 1", st.Uploads)
	}
	if len(st.Shards) != 3 {
		t.Fatalf("statz has %d per-shard blocks, want 3", len(st.Shards))
	}
	dead := st.Shards[urls[0]]
	if dead.BreakerState != "open" || dead.BreakerOpens < 1 || dead.Failures < 1 {
		t.Errorf("dead shard statz = %+v, want open breaker with failures", dead)
	}
	var liveRequests uint64
	for _, u := range urls[1:] {
		liveRequests += st.Shards[u].Requests
	}
	if liveRequests == 0 {
		t.Error("statz shows no requests on the surviving shards")
	}

	get, err = http.Get(base + "/v1/images/" + up.ID)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, get.Body)
	get.Body.Close()
	if get.StatusCode != http.StatusOK {
		t.Fatalf("read with one shard crashed: HTTP %d", get.StatusCode)
	}

	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("shutdown returned error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return after cancel")
	}
	if !strings.Contains(out.String(), "pspgw stopped cleanly") {
		t.Errorf("missing clean-stop log; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "pspgw fronting 3 shards (R=3 W=2") {
		t.Errorf("missing startup shape log; output:\n%s", out.String())
	}
}
