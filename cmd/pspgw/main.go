// Command pspgw runs the PSP cluster gateway: a routing front for N pspd
// shards that presents the exact single-node PSP API (see internal/psp), so
// an unchanged psp.Client gets consistent-hash placement, R-way replicated
// uploads with write-quorum acks, hedged failover reads, circuit-breaker
// shard ejection, and asynchronous read repair (see internal/cluster).
//
//	pspgw -addr :8750 -shards http://127.0.0.1:8754,http://127.0.0.1:8755,http://127.0.0.1:8756
//
// Placement is a pure function of the shard list: any pspgw started with
// the same membership routes identically, so gateways are stateless and can
// be replicated freely. Membership changes at runtime through POST
// /v1/admin/shards {"op":"join"|"leave","shard":URL}, which rebalances
// before returning; POST /v1/admin/repair re-runs the verify/re-replicate
// walk on demand. GET /v1/statz reports cluster and per-shard counters.
//
// Every -probe-interval each shard's /v1/healthz feeds its breaker, so a
// crashed or draining shard stops receiving traffic within a probe period
// and is re-admitted by a successful probe after recovery.
//
// Shutdown mirrors pspd: on SIGINT/SIGTERM the gateway's own /v1/healthz
// flips to 503 for -drain-grace, then the listener closes and in-flight
// requests get -drain to finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"puppies/internal/cluster"
	"puppies/internal/psp"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		log.Fatal(err)
	}
}

// run is the testable daemon body. It serves until ctx is cancelled, then
// drains in-flight requests and returns nil on a clean shutdown. If ready
// is non-nil it receives the bound listen address once the socket is open.
func run(ctx context.Context, args []string, stdout io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("pspgw", flag.ContinueOnError)
	addr := fs.String("addr", ":8750", "listen address")
	shardList := fs.String("shards", "", "comma-separated shard base URLs (required)")
	replicas := fs.Int("replicas", cluster.DefaultReplicas, "replicas per image (R)")
	writeQuorum := fs.Int("write-quorum", 0, "replica acks required before an upload is answered (W; 0 means R/2+1)")
	vnodes := fs.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per shard on the hash ring")
	probeInterval := fs.Duration("probe-interval", cluster.DefaultProbeInterval, "shard health-check period")
	failThreshold := fs.Int("fail-threshold", cluster.DefaultFailThreshold, "consecutive failures that open a shard's breaker")
	breakerCooldown := fs.Duration("breaker-cooldown", cluster.DefaultBreakerCooldown, "initial breaker ejection window (doubles per failed probe)")
	breakerCooldownMax := fs.Duration("breaker-cooldown-max", cluster.DefaultBreakerCooldownMax, "breaker ejection window cap")
	hedgeDelay := fs.Duration("hedge-delay", cluster.DefaultHedgeDelay, "how long a read waits on one replica before hedging to the next")
	shardTimeout := fs.Duration("shard-timeout", cluster.DefaultShardTimeout, "per-shard request timeout")
	maxBody := fs.Int64("max-body", psp.DefaultMaxUpload, "request/response body byte cap")
	maxInflight := fs.Int("max-inflight", 0, "admission capacity in weighted units (0 = 32/proc default, negative disables shedding)")
	admitWait := fs.Duration("admit-wait", 0, "max time a request may queue for admission before a 429 (0 = default)")
	admitQueue := fs.Int("admit-queue", 0, "admission queue length beyond capacity (0 = default)")
	admitRetryAfter := fs.Duration("admit-retry-after", 0, "base Retry-After hint on 429 responses (0 = default)")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown drain timeout")
	drainGrace := fs.Duration("drain-grace", 250*time.Millisecond, "how long healthz advertises draining (503) before the listener closes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var shards []string
	for _, s := range strings.Split(*shardList, ",") {
		if s = strings.TrimSpace(s); s != "" {
			shards = append(shards, s)
		}
	}
	if len(shards) == 0 {
		return fmt.Errorf("pspgw: -shards is required (comma-separated shard URLs)")
	}

	gw, err := cluster.New(cluster.Config{
		Shards:             shards,
		Replicas:           *replicas,
		WriteQuorum:        *writeQuorum,
		VNodes:             *vnodes,
		ShardTimeout:       *shardTimeout,
		HedgeDelay:         *hedgeDelay,
		MaxBody:            *maxBody,
		FailThreshold:      *failThreshold,
		BreakerCooldown:    *breakerCooldown,
		BreakerCooldownMax: *breakerCooldownMax,
		ProbeInterval:      *probeInterval,
		MaxInflight:        *maxInflight,
		AdmitWait:          *admitWait,
		AdmitQueue:         *admitQueue,
		AdmitRetryAfter:    *admitRetryAfter,
	})
	if err != nil {
		return fmt.Errorf("pspgw: %w", err)
	}
	probeCtx, stopProbes := context.WithCancel(context.Background())
	defer stopProbes()
	gw.Start(probeCtx)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("pspgw: listen: %w", err)
	}
	srv := &http.Server{
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	st := gw.Stats()
	fmt.Fprintf(stdout, "pspgw fronting %d shards (R=%d W=%d, %d ring points)\n",
		st.RingShards, st.Replicas, st.WriteQuorum, st.RingPoints)
	fmt.Fprintf(stdout, "pspgw listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return fmt.Errorf("pspgw: serve: %w", err)
	case <-ctx.Done():
	}

	gw.SetDraining(true)
	fmt.Fprintf(stdout, "pspgw draining: healthz now 503, closing listener in %s\n", *drainGrace)
	if *drainGrace > 0 {
		select {
		case <-time.After(*drainGrace):
		case err := <-serveErr:
			return fmt.Errorf("pspgw: serve: %w", err)
		}
	}

	fmt.Fprintf(stdout, "pspgw shutting down, draining for up to %s\n", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("pspgw: shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("pspgw: serve: %w", err)
	}
	fmt.Fprintln(stdout, "pspgw stopped cleanly")
	return nil
}
