// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment (internal/experiments)
// and reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. DESIGN.md §3 maps benchmarks to paper
// artifacts; EXPERIMENTS.md records paper-vs-measured values. Use
// cmd/experiments for the full formatted tables.
package puppies_test

import (
	"image"
	"math"
	"testing"

	"puppies"
	"puppies/internal/experiments"
	"puppies/internal/keys"
	"puppies/internal/transform"
)

// benchCfg keeps benchmark iterations affordable; cmd/experiments -full
// runs paper-scale corpora.
var benchCfg = experiments.Config{Seed: 1, PascalN: 4, InriaN: 1, CaltechN: 3}

func BenchmarkTable1Capabilities(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table1(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		pup := rows[len(rows)-1]
		if !pup.Scaling || !pup.Cropping || !pup.Compression || !pup.Rotation {
			b.Fatal("PuPPIeS capability regression")
		}
	}
}

func BenchmarkTable2PerturbedSize(b *testing.B) {
	b.ReportAllocs()
	var last []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table2(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	if len(last) == 3 {
		b.ReportMetric(last[0].Summary.Mean, "B-mean-ratio")
		b.ReportMetric(last[1].Summary.Mean, "C-mean-ratio")
		b.ReportMetric(last[2].Summary.Mean, "Z-mean-ratio")
	}
}

func BenchmarkTable5EncDecTime(b *testing.B) {
	b.ReportAllocs()
	var last []experiments.Table5Row
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table5(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	if len(last) == 2 {
		b.ReportMetric(last[0].Millis.Mean, "inria-ms")
		b.ReportMetric(last[1].Millis.Mean, "pascal-ms")
	}
}

func BenchmarkFig2RetrievalUsability(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig2(experiments.Config{Seed: 1, PascalN: 10})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.PartialOverlap10.Mean, "partial-overlap10")
		b.ReportMetric(last.FullOverlap10.Mean, "full-overlap10")
	}
}

func BenchmarkFig4ScalingRecovery(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig4(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.PuppiesPSNR.Mean, "puppies-psnr-dB")
		b.ReportMetric(last.P3PSNR.Mean, "p3-psnr-dB")
	}
}

func BenchmarkFig11PrivatePartSize(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig11(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.P3PascalMean, "p3-pascal-bytes")
		b.ReportMetric(last.P3InriaMean, "p3-inria-bytes")
		b.ReportMetric(float64(last.CrossoverPascal), "crossover-matrices")
	}
}

func BenchmarkFig16ScaleRoundTrip(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig16(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.RotationExact != res.N || res.ScalingExact != res.N {
			b.Fatal("round trip regression")
		}
	}
}

func BenchmarkFig17PrivacyVsSize(b *testing.B) {
	b.ReportAllocs()
	var last []experiments.Fig17Row
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig17(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	for _, r := range last {
		if r.Corpus == "pascal" && r.Scheme == "PuPPIeS-Zero" {
			b.ReportMetric(r.Summary.Mean, "pascal-Z-"+string(r.Level)+"-ratio")
		}
	}
}

func BenchmarkFig18PublicVsROI(b *testing.B) {
	b.ReportAllocs()
	var last []experiments.Fig18Row
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig18(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	for _, r := range last {
		if r.Scheme == "PuPPIeS-Zero" && (r.ROIPct == 20 || r.ROIPct == 100) {
			b.ReportMetric(r.Summary.Mean, "Z-roi"+itoa(r.ROIPct)+"-ratio")
		}
	}
}

func BenchmarkFig20SIFTAttack(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.Fig20Result
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig20(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.MeanOriginalFeatures, "orig-features")
		b.ReportMetric(last.MeanMatchesPuppies, "puppies-matches")
		b.ReportMetric(last.MeanMatchesP3, "p3-matches")
	}
}

func BenchmarkFig21EdgeAttack(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.Fig21Result
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig21(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil && len(last.OverlapCDFPuppies) > 0 {
		b.ReportMetric(last.OverlapCDFPuppies[len(last.OverlapCDFPuppies)-1].X, "puppies-max-edge-overlap")
	}
}

func BenchmarkFig22FaceRecognition(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.Fig22Result
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig22(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil && len(last.RatioPuppies) >= 10 {
		b.ReportMetric(last.RatioPuppies[9], "puppies-rank10-ratio")
		b.ReportMetric(last.RatioP3[9], "p3-rank10-ratio")
		b.ReportMetric(last.RatioClean[9], "clean-rank10-ratio")
	}
}

func BenchmarkFig23CorrelationAttacks(b *testing.B) {
	b.ReportAllocs()
	var last []experiments.Fig23Result
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Fig23(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, r := range last {
		if r.Attack == "matrix inference" {
			b.ReportMetric(r.PSNR, "matrix-inference-psnr-dB")
		}
	}
}

func BenchmarkFigFaceDetectionAttack(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.FaceDetectionResult
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.FaceDetection(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(float64(last.DetectedOriginal), "faces-original")
		b.ReportMetric(float64(last.DetectedPuppiesZ), "faces-puppiesZ")
		b.ReportMetric(float64(last.DetectedP3), "faces-p3")
	}
}

func BenchmarkROIDetection(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.ROITimingResult
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.ROITiming(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.TotalMillis.Mean, "recommend-ms")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkProtectRecoverPerMP measures the end-to-end protect + recover
// pipeline on a one-megapixel image, so ns/op reads directly as
// nanoseconds per megapixel.
func BenchmarkProtectRecoverPerMP(b *testing.B) {
	b.ReportAllocs()
	src := image.NewRGBA(image.Rect(0, 0, 1024, 1024))
	for y := 0; y < 1024; y++ {
		for x := 0; x < 1024; x++ {
			i := src.PixOffset(x, y)
			src.Pix[i+0] = uint8(128 + 90*math.Sin(float64(x)/11)*math.Cos(float64(y)/7))
			src.Pix[i+1] = uint8(128 + 70*math.Sin(float64(x+y)/13))
			src.Pix[i+2] = uint8(128 + 50*math.Cos(float64(x-2*y)/17))
			src.Pix[i+3] = 255
		}
	}
	pair := keys.NewPairDeterministic(99)
	opts := puppies.ProtectOptions{
		Variant: puppies.VariantZ,
		Regions: []puppies.Rect{{X: 128, Y: 128, W: 512, H: 512}},
		Keys:    []*puppies.KeyPair{pair},
	}
	b.SetBytes(1024 * 1024 * 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := puppies.Protect(src, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := puppies.UnprotectJPEG(p.JPEG, p.Params, p.Keys); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtectRecoverAllocSLO is a constants row: it performs no work
// and only publishes the allocation budget for the protect + recover
// pipeline, so benchfmt ratio gates can assert measured-vs-budget from a
// single report (AllocSLO/PerMP >= 1 in allocs/op). The megapixel pipeline
// runs in the high hundreds of allocations once image conversion stays on
// the typed Pix-slice paths; the budget's headroom is for worker-count and
// Go-version variance, while the per-pixel color.Color regression this
// guards against is a six-order-of-magnitude jump.
func BenchmarkProtectRecoverAllocSLO(b *testing.B) {
	for i := 0; i < b.N; i++ {
	}
	b.ReportMetric(2500, "allocs/op")
}

// BenchmarkPSPRecompress drives the full entropy path end-to-end the way a
// PSP does on every shared image: decode the protected JPEG, requantize,
// and re-encode with per-image optimized tables. This is the path the
// LUT/word-I/O fast path (DESIGN.md §11) accelerates.
func BenchmarkPSPRecompress(b *testing.B) {
	b.ReportAllocs()
	src := image.NewRGBA(image.Rect(0, 0, 512, 512))
	for y := 0; y < 512; y++ {
		for x := 0; x < 512; x++ {
			i := src.PixOffset(x, y)
			src.Pix[i+0] = uint8(128 + 90*math.Sin(float64(x)/11)*math.Cos(float64(y)/7))
			src.Pix[i+1] = uint8(128 + 70*math.Sin(float64(x+y)/13))
			src.Pix[i+2] = uint8(128 + 50*math.Cos(float64(x-2*y)/17))
			src.Pix[i+3] = 255
		}
	}
	pair := keys.NewPairDeterministic(41)
	p, err := puppies.Protect(src, puppies.ProtectOptions{
		Variant: puppies.VariantZ,
		Regions: []puppies.Rect{{X: 64, Y: 64, W: 256, H: 256}},
		Keys:    []*puppies.KeyPair{pair},
	})
	if err != nil {
		b.Fatal(err)
	}
	spec := puppies.TransformSpec{Op: transform.OpCompress, Quality: 60}
	b.SetBytes(int64(len(p.JPEG)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := puppies.PSPTransform(p.JPEG, spec); err != nil {
			b.Fatal(err)
		}
	}
}
