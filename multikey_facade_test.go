package puppies

import "testing"

func TestProtectMultiKeyPerRegion(t *testing.T) {
	src := sampleImage(t, 9)
	region := Rect{X: 64, Y: 64, W: 128, H: 128} // 256 blocks: 4 key groups
	prot, err := Protect(src, ProtectOptions{
		Regions:       []Rect{region},
		Variant:       VariantC,
		KeysPerRegion: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(prot.Keys) != 3 {
		t.Fatalf("got %d keys, want 3", len(prot.Keys))
	}

	// All keys recover the region at JPEG fidelity.
	rec, err := Unprotect(prot.JPEG, prot.Params, prot.Keys)
	if err != nil {
		t.Fatal(err)
	}
	if p := rectPSNR(t, src, rec, prot.Regions[0]); p < 28 {
		t.Errorf("full recovery PSNR %.1f dB", p)
	}

	// A single stripe key leaves most of the region hidden.
	partial, err := Unprotect(prot.JPEG, prot.Params, prot.Keys[:1])
	if err != nil {
		t.Fatal(err)
	}
	if p := rectPSNR(t, src, partial, prot.Regions[0]); p > 25 {
		t.Errorf("single stripe key revealed too much (PSNR %.1f dB)", p)
	}
}

func TestProtectKeysPerRegionValidation(t *testing.T) {
	src := sampleImage(t, 9)
	if _, err := Protect(src, ProtectOptions{
		Regions:       []Rect{{X: 0, Y: 0, W: 16, H: 16}},
		KeysPerRegion: -1,
	}); err == nil {
		t.Error("negative KeysPerRegion accepted")
	}
}
