package puppies

import (
	"bytes"
	"image"
	"image/jpeg"
	"math"
	"math/rand"
	"testing"

	"puppies/internal/jpegc"
)

// ycbcrJPEG builds a textured YCbCr image at the given subsampling ratio and
// encodes it with the stdlib encoder, which preserves the ratio — the only
// way to obtain genuinely subsampled input from pure stdlib.
func ycbcrJPEG(t testing.TB, w, h int, ratio image.YCbCrSubsampleRatio, phase float64) []byte {
	t.Helper()
	src := image.NewYCbCr(image.Rect(0, 0, w, h), ratio)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			src.Y[src.YOffset(x, y)] = uint8(128 + 80*math.Sin(phase+float64(x)/6)*math.Cos(float64(y)/8))
		}
	}
	cw := src.CStride
	ch := len(src.Cb) / cw
	for y := 0; y < ch; y++ {
		for x := 0; x < cw; x++ {
			src.Cb[y*cw+x] = uint8(128 + 40*math.Sin(phase+float64(x)/5))
			src.Cr[y*cw+x] = uint8(128 + 40*math.Cos(phase+float64(y)/4))
		}
	}
	var buf bytes.Buffer
	if err := jpeg.Encode(&buf, src, &jpeg.Options{Quality: 88}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sameGeometry reports whether two coefficient images have identical
// per-component grids and sampling factors.
func sameGeometry(a, b *jpegc.Image) bool {
	if a.W != b.W || a.H != b.H || len(a.Comps) != len(b.Comps) {
		return false
	}
	for ci := range a.Comps {
		ah, av := a.Comps[ci].Sampling()
		bh, bv := b.Comps[ci].Sampling()
		if ah != bh || av != bv ||
			a.Comps[ci].BlocksW != b.Comps[ci].BlocksW ||
			a.Comps[ci].BlocksH != b.Comps[ci].BlocksH {
			return false
		}
	}
	return true
}

// TestNativeProtectRecoverBitExact is the property test for the native
// subsampled pipeline: for random 4:2:0/4:2:2/4:4:0 inputs and random
// MCU-alignable regions, ProtectJPEG must (1) keep the input's native
// geometry, (2) leave every coefficient block outside the expanded regions
// bit-identical in every plane, and (3) recover the exact original
// coefficients of every plane with the keys.
func TestNativeProtectRecoverBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ratios := []image.YCbCrSubsampleRatio{
		image.YCbCrSubsampleRatio420,
		image.YCbCrSubsampleRatio422,
		image.YCbCrSubsampleRatio440,
	}
	for trial := 0; trial < 8; trial++ {
		ratio := ratios[trial%len(ratios)]
		// MCU-multiple dims keep AlignToMCU trivially satisfiable; a couple
		// of trials use ragged dims to exercise edge-block handling.
		w := 48 + 16*rng.Intn(4)
		h := 48 + 16*rng.Intn(4)
		if trial >= 6 {
			w += 1 + rng.Intn(7)
			h += 1 + rng.Intn(7)
		}
		original := ycbcrJPEG(t, w, h, ratio, float64(trial))

		// One random interior region, 8-aligned; ProtectJPEG expands it to
		// the MCU grid itself.
		rw := 16 + 8*rng.Intn(3)
		rh := 16 + 8*rng.Intn(3)
		rx := 8 * rng.Intn((w-rw)/8+1)
		ry := 8 * rng.Intn((h-rh)/8+1)
		region := Rect{X: rx, Y: ry, W: rw, H: rh}

		prot, err := ProtectJPEG(original, ProtectOptions{Regions: []Rect{region}})
		if err != nil {
			t.Fatalf("trial %d (%v %dx%d region %+v): %v", trial, ratio, w, h, region, err)
		}

		origImg, err := jpegc.Decode(bytes.NewReader(original))
		if err != nil {
			t.Fatal(err)
		}
		if !origImg.Subsampled() {
			t.Fatalf("trial %d: stdlib input not subsampled", trial)
		}
		protImg, err := jpegc.Decode(bytes.NewReader(prot.JPEG))
		if err != nil {
			t.Fatal(err)
		}

		// (1) Native geometry survives protection: no 4:4:4 normalization.
		if !sameGeometry(origImg, protImg) {
			t.Fatalf("trial %d (%v): protected JPEG lost the native geometry", trial, ratio)
		}

		// (2) Per plane, blocks outside the expanded region are untouched.
		maxH, maxV := origImg.MaxSampling()
		r := prot.Regions[0]
		for ci := range origImg.Comps {
			comp := &origImg.Comps[ci]
			hs, vs := comp.Sampling()
			// The region is MCU-aligned, so its component-grid window has
			// exact block corners.
			cx0 := r.X * hs / (8 * maxH)
			cy0 := r.Y * vs / (8 * maxV)
			cx1 := ((r.X+r.W)*hs + 8*maxH - 1) / (8 * maxH)
			cy1 := ((r.Y+r.H)*vs + 8*maxV - 1) / (8 * maxV)
			for by := 0; by < comp.BlocksH; by++ {
				for bx := 0; bx < comp.BlocksW; bx++ {
					inROI := bx >= cx0 && bx < cx1 && by >= cy0 && by < cy1
					same := *comp.Block(bx, by) == *protImg.Comps[ci].Block(bx, by)
					if !inROI && !same {
						t.Fatalf("trial %d: plane %d block (%d,%d) outside ROI changed", trial, ci, bx, by)
					}
				}
			}
		}

		// (3) Recovery is bit-exact in every plane.
		recovered, err := UnprotectJPEG(prot.JPEG, prot.Params, prot.Keys)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		recImg, err := jpegc.Decode(bytes.NewReader(recovered))
		if err != nil {
			t.Fatal(err)
		}
		if !sameGeometry(origImg, recImg) {
			t.Fatalf("trial %d: recovery changed the geometry", trial)
		}
		for ci := range origImg.Comps {
			for bi := range origImg.Comps[ci].Blocks {
				if origImg.Comps[ci].Blocks[bi] != recImg.Comps[ci].Blocks[bi] {
					t.Fatalf("trial %d: plane %d not bit-exact after recovery", trial, ci)
				}
			}
		}
	}
}

// TestNativeProtectFallsBackOnCollision: two regions whose MCU expansions
// collide cannot be protected natively (they would share a chroma block);
// ProtectJPEG must fall back to 4:4:4 normalization and still round-trip.
func TestNativeProtectFallsBackOnCollision(t *testing.T) {
	original := ycbcrJPEG(t, 96, 96, image.YCbCrSubsampleRatio420, 0)
	// 8-aligned but not 16-aligned: both expand onto the MCU covering x=40.
	regions := []Rect{
		{X: 8, Y: 8, W: 32, H: 32},
		{X: 40, Y: 8, W: 32, H: 32},
	}
	prot, err := ProtectJPEG(original, ProtectOptions{Regions: regions})
	if err != nil {
		t.Fatal(err)
	}
	protImg, err := jpegc.Decode(bytes.NewReader(prot.JPEG))
	if err != nil {
		t.Fatal(err)
	}
	if protImg.Subsampled() {
		t.Fatal("colliding MCU expansions kept the native path")
	}
	// The normalized stream still recovers losslessly against itself.
	recovered, err := UnprotectJPEG(prot.JPEG, prot.Params, prot.Keys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jpegc.Decode(bytes.NewReader(recovered)); err != nil {
		t.Fatal(err)
	}
}
