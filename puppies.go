// Package puppies is the public API of the PuPPIeS reproduction:
// Transformation-Supported Personalized Privacy Preserving Partial Image
// Sharing (He et al., DSN 2016).
//
// The flow mirrors the paper's architecture (Fig. 5):
//
//   - The sender detects (or specifies) sensitive regions of a photo,
//     perturbs each region's DCT coefficients with a secret matrix pair,
//     and uploads the still-valid JPEG plus public parameters to an
//     untrusted photo-sharing platform (PSP).
//   - The PSP stores, serves, and freely transforms the image (scale,
//     crop, rotate, filter, recompress) with ordinary image tooling.
//   - Receivers who were granted a region's key pair recover that region
//     exactly — even from a transformed copy — while everyone else
//     (including the PSP) sees noise there.
//
// Quick start:
//
//	protected, err := puppies.Protect(img, puppies.ProtectOptions{})
//	// distribute protected.Keys to authorized receivers, upload
//	// protected.JPEG + protected.Params anywhere
//	recovered, err := puppies.Unprotect(protected.JPEG, protected.Params, protected.Keys)
//
// The implementation is stdlib-only; see DESIGN.md for the system
// inventory and EXPERIMENTS.md for the reproduction of the paper's
// evaluation.
package puppies

import (
	"bytes"
	"fmt"
	"image"

	"puppies/internal/core"
	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
	"puppies/internal/keys"
	"puppies/internal/roi"
	"puppies/internal/transform"
)

// Re-exported types. Aliases keep the full method sets available to
// importers without exposing internal package paths.
type (
	// KeyPair is a region's secret: the (P_DC, P_AC) private matrix pair.
	KeyPair = keys.Pair
	// Identity is a receiver's X25519 key pair for secure key delivery.
	Identity = keys.Identity
	// Envelope is a sealed batch of key pairs in transit.
	Envelope = keys.Envelope
	// KeyStore holds an owner's key pairs and per-receiver grants.
	KeyStore = keys.Store
	// Rect is a pixel rectangle; regions are expanded to the 8-pixel block
	// grid at protect time.
	Rect = core.ROI
	// PublicData is the non-secret parameter block stored alongside a
	// protected image.
	PublicData = core.PublicData
	// TransformSpec describes a PSP-side transformation.
	TransformSpec = transform.Spec
	// Variant selects the perturbation scheme (-N, -B, -C, -Z).
	Variant = core.Variant
	// PrivacyLevel is the low/medium/high setting of paper Table IV.
	PrivacyLevel = core.PrivacyLevel
	// WrapPolicy controls wraparound handling (see core documentation).
	WrapPolicy = core.WrapPolicy
)

// Re-exported constants.
const (
	VariantN = core.VariantN
	VariantB = core.VariantB
	VariantC = core.VariantC
	VariantZ = core.VariantZ

	LevelLow    = core.LevelLow
	LevelMedium = core.LevelMedium
	LevelHigh   = core.LevelHigh

	WrapModular  = core.WrapModular
	WrapRecorded = core.WrapRecorded
)

// GenerateKeyPair creates a fresh cryptographically random key pair.
func GenerateKeyPair() (*KeyPair, error) { return keys.NewPair() }

// NewIdentity creates a receiver identity for sealed key delivery.
func NewIdentity() (*Identity, error) { return keys.NewIdentity() }

// SealKeys encrypts key pairs to a receiver's public key.
func SealKeys(receiverPub []byte, pairs []*KeyPair) (*Envelope, error) {
	return keys.Seal(receiverPub, pairs)
}

// NewKeyStore returns an empty owner-side key store.
func NewKeyStore() *KeyStore { return keys.NewStore() }

// DetectRegions runs the sender-side ROI recommendation (face, text and
// object detectors; overlaps split into disjoint block-aligned rectangles).
func DetectRegions(img image.Image) []Rect {
	planar, err := imgplane.FromStdImage(img)
	if err != nil {
		// An empty/degenerate image has no detectable regions.
		return nil
	}
	return roi.NewDetector().Recommend(planar)
}

// ProtectOptions configure Protect.
type ProtectOptions struct {
	// Variant selects the scheme; empty selects VariantZ (the paper's most
	// storage-efficient variant).
	Variant Variant
	// Level selects the privacy level; empty selects LevelMedium (the
	// paper's recommended default).
	Level PrivacyLevel
	// Regions lists the rectangles to protect. Nil means run the ROI
	// detectors; if they find nothing, Protect returns an error.
	Regions []Rect
	// Keys optionally supplies one key pair per region (matched by index).
	// Nil means generate a fresh pair per region.
	Keys []*KeyPair
	// KeysPerRegion > 1 enables the paper's §IV-D extension: each region is
	// protected by that many key pairs, cycled across 64-block groups. The
	// search space and the key-storage cost grow linearly; stripes can be
	// granted independently. Ignored when Keys is set.
	KeysPerRegion int
	// Quality is the JPEG quality for encoding (0 = 75).
	Quality int
	// TransformSupport requests the extra public parameters needed to
	// recover regions from pixel-domain-transformed copies (exact recovery
	// under scaling/rotation/filtering). Costs public-parameter bytes.
	TransformSupport bool
}

// Protected is the output of Protect.
type Protected struct {
	// JPEG is the perturbed image, a valid baseline JFIF stream any JPEG
	// tool can open.
	JPEG []byte
	// Params is the serialized PublicData to store next to the image.
	Params []byte
	// Keys holds the region secrets in region order (KeysPerRegion entries
	// per region when that option is set). Distribute them to authorized
	// receivers; never upload them.
	Keys []*KeyPair
	// Regions are the block-aligned rectangles actually protected.
	Regions []Rect
}

// Protect perturbs the sensitive regions of an image and returns the
// shareable artifacts.
func Protect(src image.Image, opts ProtectOptions) (*Protected, error) {
	if src == nil {
		return nil, fmt.Errorf("puppies: nil image")
	}
	if opts.Variant == "" {
		opts.Variant = VariantZ
	}
	if opts.Level == "" {
		opts.Level = LevelMedium
	}
	params, err := core.NewParams(opts.Variant, opts.Level)
	if err != nil {
		return nil, err
	}
	params.Wrap = core.WrapRecorded
	params.TransformSupport = opts.TransformSupport
	scheme, err := core.NewScheme(params)
	if err != nil {
		return nil, err
	}

	planar, err := imgplane.FromStdImage(src)
	if err != nil {
		return nil, err
	}
	img, err := jpegc.FromPlanar(planar, jpegc.Options{Quality: opts.Quality})
	if err != nil {
		return nil, err
	}

	regions := opts.Regions
	if regions == nil {
		regions = roi.NewDetector().Recommend(planar)
		if len(regions) == 0 {
			return nil, fmt.Errorf("puppies: no sensitive regions detected; pass Regions explicitly")
		}
	} else {
		aligned := make([]Rect, 0, len(regions))
		for _, r := range regions {
			a, err := r.AlignToBlocks(img.W, img.H)
			if err != nil {
				return nil, fmt.Errorf("puppies: region %+v: %w", r, err)
			}
			aligned = append(aligned, a)
		}
		regions = roi.AlignAll(aligned, img.W, img.H)
	}

	if opts.Keys != nil && len(opts.Keys) != len(regions) {
		return nil, fmt.Errorf("puppies: %d keys for %d regions", len(opts.Keys), len(regions))
	}
	if opts.KeysPerRegion < 0 {
		return nil, fmt.Errorf("puppies: negative KeysPerRegion")
	}
	perRegion := opts.KeysPerRegion
	if perRegion == 0 || opts.Keys != nil {
		perRegion = 1
	}
	assignments := make([]core.RegionAssignment, len(regions))
	var pairs []*KeyPair
	for i, r := range regions {
		if opts.Keys != nil {
			pairs = append(pairs, opts.Keys[i])
			assignments[i] = core.RegionAssignment{ROI: r, Pair: opts.Keys[i]}
			continue
		}
		regionPairs := make([]*keys.Pair, perRegion)
		for j := range regionPairs {
			if regionPairs[j], err = keys.NewPair(); err != nil {
				return nil, err
			}
		}
		pairs = append(pairs, regionPairs...)
		if perRegion == 1 {
			assignments[i] = core.RegionAssignment{ROI: r, Pair: regionPairs[0]}
		} else {
			assignments[i] = core.RegionAssignment{ROI: r, Pairs: regionPairs}
		}
	}

	pd, _, err := scheme.EncryptImage(img, assignments)
	if err != nil {
		return nil, err
	}
	var jpegBuf bytes.Buffer
	if err := img.Encode(&jpegBuf, scheme.EncodeOptions()); err != nil {
		return nil, err
	}
	paramBytes, err := pd.Encode()
	if err != nil {
		return nil, err
	}
	return &Protected{
		JPEG:    jpegBuf.Bytes(),
		Params:  paramBytes,
		Keys:    pairs,
		Regions: regions,
	}, nil
}

// ProtectJPEG protects regions of an existing baseline JPEG with minimal
// generation loss: coefficients are carried over from the input instead of
// being re-encoded from pixels. For 4:4:4 or grayscale inputs (including
// this library's own output) the whole image is bit-exact outside the
// regions. Subsampled inputs (4:2:0/4:2:2/4:4:0) are carried in native
// geometry — also fully bit-exact outside the regions — when every region
// can be expanded to the input's MCU grid without colliding with a
// neighbor; otherwise chroma is upsampled and re-quantized once
// (Normalize444), the historical behavior. Regions cannot be auto-detected
// on this path — pass them explicitly.
func ProtectJPEG(jpegData []byte, opts ProtectOptions) (*Protected, error) {
	if len(opts.Regions) == 0 {
		return nil, fmt.Errorf("puppies: ProtectJPEG requires explicit Regions")
	}
	if opts.Variant == "" {
		opts.Variant = VariantZ
	}
	if opts.Level == "" {
		opts.Level = LevelMedium
	}
	img, err := jpegc.Decode(bytes.NewReader(jpegData))
	if err != nil {
		return nil, fmt.Errorf("puppies: decode image: %w", err)
	}
	params, err := core.NewParams(opts.Variant, opts.Level)
	if err != nil {
		return nil, err
	}
	params.Wrap = core.WrapRecorded
	params.TransformSupport = opts.TransformSupport
	scheme, err := core.NewScheme(params)
	if err != nil {
		return nil, err
	}

	regions := make([]Rect, 0, len(opts.Regions))
	for _, r := range opts.Regions {
		a, err := r.AlignToBlocks(img.W, img.H)
		if err != nil {
			return nil, fmt.Errorf("puppies: region %+v: %w", r, err)
		}
		regions = append(regions, a)
	}
	regions = roi.AlignAll(regions, img.W, img.H)

	// Native subsampled path: when every region expands to the input's MCU
	// grid without colliding with a neighbor, protect chroma blocks at
	// native resolution — no transcode at all. Otherwise normalize to
	// 4:4:4 once, where the 8-pixel block grid is the MCU grid.
	if img.Subsampled() {
		if mcu, ok := alignRegionsToMCU(img, regions); ok {
			regions = mcu
		} else if img, err = img.Normalize444(); err != nil {
			return nil, err
		}
	}

	if opts.Keys != nil && len(opts.Keys) != len(regions) {
		return nil, fmt.Errorf("puppies: %d keys for %d regions", len(opts.Keys), len(regions))
	}
	assignments := make([]core.RegionAssignment, len(regions))
	pairs := make([]*KeyPair, len(regions))
	for i, r := range regions {
		pair := (*KeyPair)(nil)
		if opts.Keys != nil {
			pair = opts.Keys[i]
		} else if pair, err = keys.NewPair(); err != nil {
			return nil, err
		}
		pairs[i] = pair
		assignments[i] = core.RegionAssignment{ROI: r, Pair: pair}
	}
	pd, _, err := scheme.EncryptImage(img, assignments)
	if err != nil {
		return nil, err
	}
	var jpegBuf bytes.Buffer
	if err := img.Encode(&jpegBuf, scheme.EncodeOptions()); err != nil {
		return nil, err
	}
	paramBytes, err := pd.Encode()
	if err != nil {
		return nil, err
	}
	return &Protected{
		JPEG:    jpegBuf.Bytes(),
		Params:  paramBytes,
		Keys:    pairs,
		Regions: regions,
	}, nil
}

// UnprotectJPEG is the lossless counterpart of Unprotect: it returns the
// recovered coefficient stream as JPEG bytes instead of decoded pixels, so
// a receiver can store the recovered file without generation loss.
func UnprotectJPEG(jpegData, params []byte, pairs []*KeyPair) ([]byte, error) {
	img, err := jpegc.Decode(bytes.NewReader(jpegData))
	if err != nil {
		return nil, fmt.Errorf("puppies: decode image: %w", err)
	}
	pd, err := core.DecodePublicData(params)
	if err != nil {
		return nil, err
	}
	if _, err := core.DecryptImage(img, pd, keyMap(pairs)); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := img.Encode(&buf, jpegc.EncodeOptions{Tables: jpegc.TablesOptimized}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// alignRegionsToMCU expands block-aligned regions outward to the MCU grid
// of a subsampled image. It reports failure when any expansion fails or two
// expanded regions collide; the caller then falls back to 4:4:4
// normalization, where the 8-pixel block grid is the MCU grid.
func alignRegionsToMCU(img *jpegc.Image, regions []Rect) ([]Rect, bool) {
	maxH, maxV := img.MaxSampling()
	out := make([]Rect, len(regions))
	for i, r := range regions {
		a, err := r.AlignToMCU(img.W, img.H, maxH, maxV)
		if err != nil {
			return nil, false
		}
		for j := 0; j < i; j++ {
			if a.Overlaps(out[j]) {
				return nil, false
			}
		}
		out[i] = a
	}
	return out, true
}

// keyMap indexes pairs by ID.
func keyMap(pairs []*KeyPair) map[string]*KeyPair {
	m := make(map[string]*KeyPair, len(pairs))
	for _, p := range pairs {
		if p != nil {
			m[p.ID] = p
		}
	}
	return m
}

// Unprotect decrypts every region whose key is present and returns the
// image. Regions without keys remain perturbed — the personalized-privacy
// behaviour.
func Unprotect(jpegData, params []byte, pairs []*KeyPair) (image.Image, error) {
	img, err := jpegc.Decode(bytes.NewReader(jpegData))
	if err != nil {
		return nil, fmt.Errorf("puppies: decode image: %w", err)
	}
	pd, err := core.DecodePublicData(params)
	if err != nil {
		return nil, err
	}
	if _, err := core.DecryptImage(img, pd, keyMap(pairs)); err != nil {
		return nil, err
	}
	planar, err := img.ToPlanar()
	if err != nil {
		return nil, err
	}
	return planar.Quantize8().ToStdImage(), nil
}

// UnprotectTransformed recovers an image that the PSP transformed in the
// coefficient domain (rotations by multiples of 90 degrees, flips,
// block-aligned crops, recompression is handled by RecoverCompressed).
// spec must describe the PSP's transformation.
func UnprotectTransformed(jpegData, params []byte, spec TransformSpec, pairs []*KeyPair) (image.Image, error) {
	img, err := jpegc.Decode(bytes.NewReader(jpegData))
	if err != nil {
		return nil, fmt.Errorf("puppies: decode image: %w", err)
	}
	pd, err := core.DecodePublicData(params)
	if err != nil {
		return nil, err
	}
	pd.Transform = spec
	out, err := core.ReconstructCoeff(img, pd, keyMap(pairs))
	if err != nil {
		return nil, err
	}
	planar, err := out.ToPlanar()
	if err != nil {
		return nil, err
	}
	return planar.Quantize8().ToStdImage(), nil
}

// EncodeJPEG encodes any stdlib image as a baseline 4:4:4 JPEG using this
// library's codec (quality 0 selects 75).
func EncodeJPEG(src image.Image, quality int) ([]byte, error) {
	if src == nil {
		return nil, fmt.Errorf("puppies: nil image")
	}
	planar, err := imgplane.FromStdImage(src)
	if err != nil {
		return nil, err
	}
	img, err := jpegc.FromPlanar(planar, jpegc.Options{Quality: quality})
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := img.Encode(&buf, jpegc.EncodeOptions{}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// PSPTransform applies a transformation to a JPEG exactly as a PSP would —
// with no knowledge of any protection in it — and returns the re-encoded
// result. Useful for driving the scheme without the HTTP simulator.
func PSPTransform(jpegData []byte, spec TransformSpec) ([]byte, error) {
	img, err := jpegc.Decode(bytes.NewReader(jpegData))
	if err != nil {
		return nil, fmt.Errorf("puppies: decode image: %w", err)
	}
	out, err := transform.Apply(img, spec)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := out.Encode(&buf, jpegc.EncodeOptions{Tables: jpegc.TablesOptimized}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// PSPTransformPixels applies a pixel-domain transformation and returns the
// result as a lossless PLNR stream — the high-fidelity delivery path that
// UnprotectTransformedPixels consumes.
func PSPTransformPixels(jpegData []byte, spec TransformSpec) ([]byte, error) {
	img, err := jpegc.Decode(bytes.NewReader(jpegData))
	if err != nil {
		return nil, fmt.Errorf("puppies: decode image: %w", err)
	}
	pix, err := img.ToPlanar()
	if err != nil {
		return nil, err
	}
	out, err := transform.ApplyPlanar(pix, spec)
	if err != nil {
		return nil, err
	}
	return out.MarshalBinary()
}

// UnprotectTransformedPixels recovers from a pixel-domain transformed copy
// (scaling, arbitrary rotation, filtering, unaligned crops) delivered as a
// lossless PLNR stream (see the psp package's /pixels endpoint). Exact when
// the image was protected with the default WrapRecorded policy (and, for
// VariantZ, with TransformSupport).
func UnprotectTransformedPixels(plnrData, params []byte, spec TransformSpec, pairs []*KeyPair) (image.Image, error) {
	transformed, err := imgplane.DecodeBinary(bytes.NewReader(plnrData))
	if err != nil {
		return nil, err
	}
	pd, err := core.DecodePublicData(params)
	if err != nil {
		return nil, err
	}
	pd.Transform = spec
	out, err := core.ReconstructPixels(transformed, pd, keyMap(pairs))
	if err != nil {
		return nil, err
	}
	return out.Quantize8().ToStdImage(), nil
}
