// Quickstart: protect a region of a photo, share the result anywhere, and
// recover it with the key — the minimal PuPPIeS flow.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"image"
	"image/color"
	"log"

	"puppies"
)

func main() {
	// A stand-in photo: textured background with a "sensitive document" in
	// the middle (in a real application this is your image.Image).
	photo := makePhoto(320, 240)
	sensitive := puppies.Rect{X: 96, Y: 72, W: 128, H: 96}

	// Sender: perturb the sensitive region. The output JPEG is a normal
	// baseline JPEG any viewer, CDN or photo platform can handle.
	prot, err := puppies.Protect(photo, puppies.ProtectOptions{
		Regions: []puppies.Rect{sensitive},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protected JPEG: %d bytes, public params: %d bytes, %d key pair(s)\n",
		len(prot.JPEG), len(prot.Params), len(prot.Keys))

	// Anyone without the key sees noise in the region.
	blocked, err := puppies.Unprotect(prot.JPEG, prot.Params, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without key: center pixel of region = %v (perturbed)\n",
		colorAt(blocked, 160, 120))

	// A receiver holding the key recovers the region exactly.
	recovered, err := puppies.Unprotect(prot.JPEG, prot.Params, prot.Keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with key:    center pixel of region = %v (recovered)\n",
		colorAt(recovered, 160, 120))
	fmt.Printf("original:    center pixel of region = %v\n", colorAt(photo, 160, 120))
}

func makePhoto(w, h int) image.Image {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.SetRGBA(x, y, color.RGBA{
				R: uint8(90 + (x*7+y*3)%90),
				G: uint8(110 + (x*3+y*11)%70),
				B: uint8(70 + (x+y)%60),
				A: 255,
			})
		}
	}
	// The "document": a bright area with dark lines of "text".
	for y := 80; y < 160; y++ {
		for x := 104; x < 216; x++ {
			c := color.RGBA{R: 235, G: 232, B: 220, A: 255}
			if (y/6)%2 == 0 && x%5 != 0 && y > 88 && y < 152 {
				c = color.RGBA{R: 40, G: 36, B: 48, A: 255}
			}
			img.SetRGBA(x, y, c)
		}
	}
	return img
}

func colorAt(img image.Image, x, y int) string {
	r, g, b, _ := img.At(x, y).RGBA()
	return fmt.Sprintf("(%3d,%3d,%3d)", r>>8, g>>8, b>>8)
}
