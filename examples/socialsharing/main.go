// Social sharing: the paper's Einstein/Chaplin scenario (Fig. 3).
//
// Alice posts a group photo with two faces. Each face is protected with its
// own key pair. Alice grants Einstein's friends one key and Chaplin's
// friends the other; each group sees only the face it was granted, while
// the platform and the public see neither. Key delivery uses sealed
// envelopes (X25519 + AES-GCM).
//
//	go run ./examples/socialsharing
package main

import (
	"fmt"
	"log"

	"puppies"
	"puppies/internal/dataset"
)

func main() {
	// A synthetic "two people in front of a landmark" photo with
	// ground-truth face rectangles.
	gen, err := dataset.NewGenerator(dataset.Caltech, 2024)
	if err != nil {
		log.Fatal(err)
	}
	item := gen.Item(3)
	photo := item.Image.Quantize8().ToStdImage()

	var faces []puppies.Rect
	for _, a := range item.Annotations {
		if a.Class == dataset.ClassFace {
			faces = append(faces, puppies.Rect{X: a.X, Y: a.Y, W: a.W, H: a.H})
		}
	}
	if len(faces) < 2 {
		faces = append(faces, puppies.Rect{X: 16, Y: 16, W: 64, H: 64})
	}
	fmt.Printf("photo %dx%d with %d face regions\n",
		photo.Bounds().Dx(), photo.Bounds().Dy(), len(faces))

	// Alice protects each face with its own key.
	prot, err := puppies.Protect(photo, puppies.ProtectOptions{
		Regions: faces[:2],
		Variant: puppies.VariantZ,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded to PSP: %d bytes JPEG + %d bytes public params\n",
		len(prot.JPEG), len(prot.Params))

	// Alice's key store with per-friend-group grants.
	store := puppies.NewKeyStore()
	for _, k := range prot.Keys {
		if err := store.Add(k); err != nil {
			log.Fatal(err)
		}
	}
	if err := store.Grant("einstein-friends", prot.Keys[0].ID); err != nil {
		log.Fatal(err)
	}
	if err := store.Grant("chaplin-friends", prot.Keys[1].ID); err != nil {
		log.Fatal(err)
	}

	// Each group opens its sealed envelope and decrypts what it may see.
	for _, group := range []string{"einstein-friends", "chaplin-friends"} {
		identity, err := puppies.NewIdentity()
		if err != nil {
			log.Fatal(err)
		}
		env, err := store.SealFor(group, identity.PublicKey())
		if err != nil {
			log.Fatal(err)
		}
		keys, err := identity.Open(env)
		if err != nil {
			log.Fatal(err)
		}
		img, err := puppies.Unprotect(prot.JPEG, prot.Params, keys)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: received %d key(s); decrypted image %v — sees face %s only\n",
			group, len(keys), img.Bounds().Max, keys[0].ID[:8])
	}

	// The public (no keys) sees both faces perturbed.
	public, err := puppies.Unprotect(prot.JPEG, prot.Params, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("public view: %v with all faces perturbed\n", public.Bounds().Max)
}
