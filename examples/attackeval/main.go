// Attack evaluation: run the paper's §VI privacy attacks against a
// protected photo and print what each attacker extracts.
//
//	go run ./examples/attackeval
package main

import (
	"fmt"
	"log"
	"math"

	"puppies/internal/attack"
	"puppies/internal/core"
	"puppies/internal/dataset"
	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
	"puppies/internal/keys"
	"puppies/internal/roi"
)

func main() {
	gen, err := dataset.NewGenerator(dataset.PASCAL, 33)
	if err != nil {
		log.Fatal(err)
	}
	item := gen.Item(1)
	img, err := jpegc.FromPlanar(item.Image, jpegc.Options{Quality: 75})
	if err != nil {
		log.Fatal(err)
	}

	// Protect the salient object region with PuPPIeS-C at medium privacy.
	var region core.ROI
	for _, a := range item.Annotations {
		if a.Class == dataset.ClassObject {
			r, err := core.ROI{X: a.X, Y: a.Y, W: a.W, H: a.H}.AlignToBlocks(img.W, img.H)
			if err == nil {
				region = r
				break
			}
		}
	}
	if region.W == 0 {
		region = core.ROI{X: 96, Y: 96, W: 128, H: 96}
	}
	scheme, err := core.NewScheme(core.Params{Variant: core.VariantC, MR: 32, K: 8})
	if err != nil {
		log.Fatal(err)
	}
	perturbed := img.Clone()
	pair := keys.NewPairDeterministic(4242)
	pd, st, err := scheme.EncryptImage(perturbed, []core.RegionAssignment{{ROI: region, Pair: pair}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("protected region %+v: %d blocks, %d coefficients perturbed\n",
		region, st.Blocks, st.Perturbed)

	origPix, _ := img.ToPlanar()
	origPix.Quantize8()
	pertPix, _ := perturbed.ToPlanar()
	pertPix.Quantize8()

	// Brute force accounting (§VI-A).
	fmt.Println("\n-- brute force --")
	reports, err := attack.BruteForceAll(0)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range reports {
		fmt.Printf("%-6s: %4d secure bits (NIST>=256: %v)\n", r.Level, r.TotalBits, r.MeetsNIST)
	}

	// SIFT features (§VI-B.1).
	fmt.Println("\n-- SIFT feature attack --")
	orig := attack.SIFT(origPix, attack.SIFTParams{})
	pert := attack.SIFT(pertPix, attack.SIFTParams{})
	matches := attack.MatchSIFT(orig, pert, 0)
	fmt.Printf("original keypoints: %d; matches surviving perturbation: %d\n",
		len(orig), len(matches))

	// Edge detection (§VI-B.2).
	fmt.Println("\n-- edge detection attack --")
	refEdges, err := attack.Canny(origPix, attack.CannyParams{})
	if err != nil {
		log.Fatal(err)
	}
	pertEdges, err := attack.Canny(pertPix, attack.CannyParams{})
	if err != nil {
		log.Fatal(err)
	}
	overlap, err := attack.EdgeOverlap(refEdges, pertEdges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original edge pixels surviving: %.1f%%\n", overlap*100)

	// Face detection (§VI-B.3).
	fmt.Println("\n-- face detection attack --")
	det := roi.NewDetector()
	fmt.Printf("faces found: %d in original, %d in perturbed\n",
		len(det.DetectFaces(origPix)), len(det.DetectFaces(pertPix)))

	// Signal correlation attacks (§VI-B.5).
	fmt.Println("\n-- signal correlation attacks --")
	rec1, err := attack.InferMatrixAttack(perturbed, pd)
	if err != nil {
		log.Fatal(err)
	}
	rec2, err := attack.NeighborInterpolationAttack(pertPix, pd)
	if err != nil {
		log.Fatal(err)
	}
	rec3, err := attack.PCAAttack(pertPix, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matrix inference:        region PSNR %.1f dB\n", regionPSNR(origPix, rec1, region))
	fmt.Printf("neighbor interpolation:  region PSNR %.1f dB\n", regionPSNR(origPix, rec2, region))
	fmt.Printf("PCA reconstruction:      region PSNR %.1f dB\n", regionPSNR(origPix, rec3, region))
	fmt.Println("\n(PSNR below ~25 dB means the attacker recovered noise, not content)")
}

func regionPSNR(a, b *imgplane.Image, r core.ROI) float64 {
	var mse float64
	var n int
	for ci := range a.Planes {
		for y := r.Y; y < r.Y+r.H; y++ {
			for x := r.X; x < r.X+r.W; x++ {
				d := float64(a.Planes[ci].At(x, y) - b.Planes[ci].At(x, y))
				mse += d * d
				n++
			}
		}
	}
	mse /= float64(n)
	if mse == 0 {
		return 99
	}
	return 10 * math.Log10(255*255/mse)
}
