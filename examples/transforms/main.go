// Transforms: the paper's headline feature (Figs. 10 and 16) driven through
// the real HTTP PSP simulator.
//
// A protected photo is uploaded to a PSP; the PSP rotates it (coefficient
// domain, like jpegtran) and scales it (pixel domain); the receiver
// reconstructs the transformed original from each copy — exactly — using
// only the private matrices and public data.
//
//	go run ./examples/transforms
package main

import (
	"bytes"
	"context"
	"fmt"
	"image"
	"log"
	"math"
	"net/http/httptest"

	"puppies"
	"puppies/internal/core"
	"puppies/internal/dataset"
	"puppies/internal/imgplane"
	"puppies/internal/jpegc"
	"puppies/internal/keys"
	"puppies/internal/psp"
	"puppies/internal/transform"
)

func main() {
	ctx := context.Background()
	// Spin up the PSP.
	server := httptest.NewServer(psp.NewServer().Handler())
	defer server.Close()
	client := &psp.Client{BaseURL: server.URL}
	fmt.Println("PSP running at", server.URL)

	// Sender: protect a photo (transform support on, so pixel-domain
	// recovery is exact).
	gen, err := dataset.NewGenerator(dataset.PASCAL, 7)
	if err != nil {
		log.Fatal(err)
	}
	item := gen.Item(2)
	photo := item.Image.Quantize8().ToStdImage()
	region := puppies.Rect{X: 96, Y: 96, W: 128, H: 96}
	prot, err := puppies.Protect(photo, puppies.ProtectOptions{
		Regions:          []puppies.Rect{region},
		Variant:          puppies.VariantC,
		TransformSupport: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Upload through the HTTP API.
	img, err := jpegc.Decode(bytes.NewReader(prot.JPEG))
	if err != nil {
		log.Fatal(err)
	}
	pd, err := core.DecodePublicData(prot.Params)
	if err != nil {
		log.Fatal(err)
	}
	id, err := client.Upload(ctx, img, pd, jpegc.EncodeOptions{Tables: jpegc.TablesOptimized})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("uploaded protected image as", id)

	keyring := map[string]*keys.Pair{prot.Keys[0].ID: prot.Keys[0]}
	reference, err := jpegc.Decode(bytes.NewReader(mustEncode(photo)))
	if err != nil {
		log.Fatal(err)
	}

	// 1. PSP-side lossless rotation (Fig. 10).
	rotSpec := transform.Spec{Op: transform.OpRotate90}
	rotated, err := client.FetchTransformed(ctx, id, rotSpec)
	if err != nil {
		log.Fatal(err)
	}
	pdRot := *pd
	pdRot.Transform = rotSpec
	recRot, err := core.ReconstructCoeff(rotated, &pdRot, keyring)
	if err != nil {
		log.Fatal(err)
	}
	wantRot, err := transform.Rotate90(reference)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rotate90:  recovered %dx%d, exact=%v\n",
		recRot.W, recRot.H, equal(recRot, wantRot))

	// 2. PSP-side downscale (Fig. 16), lossless pixel delivery.
	scaleSpec := transform.Spec{Op: transform.OpScale, FactorX: 0.5, FactorY: 0.5}
	scaledPix, err := client.FetchTransformedPixels(ctx, id, scaleSpec)
	if err != nil {
		log.Fatal(err)
	}
	pdScale := *pd
	pdScale.Transform = scaleSpec
	recScale, err := core.ReconstructPixels(scaledPix, &pdScale, keyring)
	if err != nil {
		log.Fatal(err)
	}
	refPix, err := reference.ToPlanar()
	if err != nil {
		log.Fatal(err)
	}
	wantScale, err := transform.ApplyPlanar(refPix, scaleSpec)
	if err != nil {
		log.Fatal(err)
	}
	psnr, err := imgplane.ImagePSNR(recScale, wantScale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scale 0.5: recovered %dx%d, PSNR vs scaled original = %s\n",
		recScale.W(), recScale.H(), fmtPSNR(psnr))

	// 3. Without the key, the scaled copy still hides the region.
	noKey, err := core.ReconstructPixels(scaledPix, &pdScale, nil)
	if err != nil {
		log.Fatal(err)
	}
	noKeyPSNR, err := imgplane.ImagePSNR(noKey, wantScale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("no key:    PSNR vs scaled original = %s (region stays hidden)\n", fmtPSNR(noKeyPSNR))
}

func mustEncode(img image.Image) []byte {
	data, err := puppies.EncodeJPEG(img, 0)
	if err != nil {
		log.Fatal(err)
	}
	return data
}

func equal(a, b *jpegc.Image) bool {
	if a.W != b.W || a.H != b.H {
		return false
	}
	for ci := range a.Comps {
		for bi := range a.Comps[ci].Blocks {
			if a.Comps[ci].Blocks[bi] != b.Comps[ci].Blocks[bi] {
				return false
			}
		}
	}
	return true
}

func fmtPSNR(v float64) string {
	if math.IsInf(v, 1) {
		return "inf (bit exact)"
	}
	return fmt.Sprintf("%.1f dB", v)
}
